package perfdb

import (
	"math"
	"math/rand"
	"testing"

	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// randomBatch generates a sample batch exercising the codec's paths:
// repeated and fresh dictionary strings, forward and backward time
// steps, negative and special float values.
func randomBatch(rng *rand.Rand, n int) []datasource.Sample {
	metrics := []string{"sync_wait", "io_wait", "cpu", "msg_bytes_sent", ""}
	procs := []string{"app{0}", "app{1}", "app{2}", ""}
	paths := []string{"/Code", "/Code/a.c/f", "/Code/b.c/g", ""}
	specials := []float64{0, 1, -1, math.Inf(1), math.Inf(-1), math.NaN(), math.SmallestNonzeroFloat64, -math.MaxFloat64}
	batch := make([]datasource.Sample, n)
	t := sim.Time(0)
	for i := range batch {
		t += sim.Time(rng.Intn(2_000_000) - 500_000) // deltas go backward sometimes
		d := rng.NormFloat64() * 1000
		v := rng.NormFloat64() * 1e9
		if rng.Intn(8) == 0 {
			d = specials[rng.Intn(len(specials))]
		}
		if rng.Intn(8) == 0 {
			v = specials[rng.Intn(len(specials))]
		}
		batch[i] = datasource.Sample{
			Metric: metrics[rng.Intn(len(metrics))],
			Focus: resource.Focus{
				CodePath:    paths[rng.Intn(len(paths))],
				MachinePath: paths[rng.Intn(len(paths))],
				SyncPath:    paths[rng.Intn(len(paths))],
			},
			Proc:  procs[rng.Intn(len(procs))],
			Time:  t,
			Delta: d,
			Value: v,
		}
	}
	return batch
}

// sampleEqual compares samples treating NaN as equal to NaN — the codec
// must round-trip the exact bits, which reflect.DeepEqual on floats
// rejects for NaN.
func sampleEqual(a, b datasource.Sample) bool {
	if a.Metric != b.Metric || a.Focus != b.Focus || a.Proc != b.Proc || a.Time != b.Time {
		return false
	}
	return math.Float64bits(a.Delta) == math.Float64bits(b.Delta) &&
		math.Float64bits(a.Value) == math.Float64bits(b.Value)
}

func TestPackSamplesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		batch := randomBatch(rng, rng.Intn(64))
		got, err := unpackSamples(packSamples(batch))
		if err != nil {
			t.Fatalf("trial %d: unpack: %v", trial, err)
		}
		if len(got) != len(batch) {
			t.Fatalf("trial %d: %d samples round-tripped to %d", trial, len(batch), len(got))
		}
		for i := range batch {
			if !sampleEqual(batch[i], got[i]) {
				t.Fatalf("trial %d sample %d: %+v round-tripped to %+v", trial, i, batch[i], got[i])
			}
		}
	}
}

func TestPackSamplesEmpty(t *testing.T) {
	got, err := unpackSamples(packSamples(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty batch round-tripped to %d samples", len(got))
	}
}

func TestPackSamplesCompactsRepetition(t *testing.T) {
	// 64 samples over 4 distinct strings must pack far below gob's
	// per-sample struct overhead — the point of the dictionary.
	rng := rand.New(rand.NewSource(1))
	batch := randomBatch(rng, 64)
	packed := packSamples(batch)
	if len(packed) > 64*40 {
		t.Errorf("64 samples packed to %d bytes; dictionary not effective", len(packed))
	}
}

func TestUnpackSamplesRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	valid := packSamples(randomBatch(rng, 32))
	// Truncations at every length must error or return fewer samples —
	// never panic. (Most lengths error; a prefix that happens to parse is
	// impossible because the trailing-bytes check requires exact length.)
	for n := 0; n < len(valid); n++ {
		if _, err := unpackSamples(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	// Flipped bytes must never panic (they may decode to different
	// samples when the flip lands in float payload bits).
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		unpackSamples(mut)
	}
}
