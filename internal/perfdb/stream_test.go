package perfdb

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"pperf/internal/session"
	"pperf/internal/sim"
)

// TestStreamRecorderBoundedMemory is the fix for the v1 recorder's
// unbounded growth: however long the run, the streaming recorder holds at
// most one chunk of events in memory.
func TestStreamRecorderBoundedMemory(t *testing.T) {
	const chunk = 64
	path := filepath.Join(t.TempDir(), "run.ppdb")
	rec, err := NewStreamRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetChunkEvents(chunk)
	rec.SetHistogram(100, 50*sim.Millisecond)

	rng := rand.New(rand.NewSource(11))
	src := syntheticArchive(rng, 50_000)
	replayEventsInto(rec, src.Events)
	if got := rec.PeakBufferedEvents(); got > chunk {
		t.Errorf("peak buffered events %d exceeds chunk size %d over a %d-event run", got, chunk, len(src.Events))
	}
	rec.SetMeta("program", "synthetic")
	rec.SetExtra([]byte("payload"))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.EventCount() != len(src.Events) {
		t.Errorf("recorded %d of %d events", rec.EventCount(), len(src.Events))
	}

	got, err := LoadArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Truncated {
		t.Fatal("closed recording loaded as truncated")
	}
	want := &session.Archive{Header: got.Header, Events: src.Events}
	archivesEquivalent(t, want, got)
	if got.Header.Meta["program"] != "synthetic" || string(got.Header.Extra) != "payload" {
		t.Errorf("finalized header lost Meta/Extra: %+v", got.Header)
	}
}

// TestStreamRecorderAbort verifies an aborted recording leaves no file
// behind (the temp file is removed, the final path never appears).
func TestStreamRecorderAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ppdb")
	rec, err := NewStreamRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetHistogram(0, 0)
	rec.RecordBarrier()
	rec.Abort()
	for _, p := range []string{path, path + ".tmp"} {
		if _, err := LoadArchive(p); err == nil {
			t.Errorf("%s exists after Abort", p)
		}
	}
}

// TestStreamRecorderEmptyRun: a recording that captured zero events still
// closes into a loadable archive (header chunk + trailer).
func TestStreamRecorderEmptyRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ppdb")
	rec, err := NewStreamRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetHistogram(10, 50*sim.Millisecond)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := LoadArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 0 || a.Truncated {
		t.Errorf("empty recording loaded as %d events truncated=%v", len(a.Events), a.Truncated)
	}
}

// --- throughput benchmarks -------------------------------------------------

// BenchmarkChunkWrite measures streaming-encode throughput.
func BenchmarkChunkWrite(b *testing.B) {
	a := syntheticArchive(rand.New(rand.NewSource(2)), 2000)
	var buf bytes.Buffer
	if err := WriteArchive(&buf, a); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteArchive(&buf, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkRead measures decode throughput.
func BenchmarkChunkRead(b *testing.B) {
	a := syntheticArchive(rand.New(rand.NewSource(2)), 2000)
	var buf bytes.Buffer
	if err := WriteArchive(&buf, a); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadArchive(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPackSamples measures the delta codec alone.
func BenchmarkPackSamples(b *testing.B) {
	batch := randomBatch(rand.New(rand.NewSource(2)), 512)
	packed := packSamples(batch)
	b.SetBytes(int64(len(packed)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := unpackSamples(packSamples(batch)); err != nil {
			b.Fatal(err)
		}
	}
}
