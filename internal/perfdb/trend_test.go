package perfdb

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// trendViews builds one synthetic run per rate level: metric "m" at a
// constant per-bin delta, 40 bins of 50ms.
func trendViews(levels ...float64) []*RunView {
	var out []*RunView
	for i, lv := range levels {
		id := []string{"r0001", "r0002", "r0003", "r0004", "r0005", "r0006"}[i]
		a := rateArchive("m", 100, flat(40, lv))
		out = append(out, NewRunView(a, RunMeta{ID: id, Program: "synthetic"}))
	}
	return out
}

func TestTrendFlatIsStable(t *testing.T) {
	rep, err := Trend(trendViews(1, 1, 1, 1, 1), TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 1 {
		t.Fatalf("series: %+v", rep.Series)
	}
	if s := rep.Series[0]; s.Verdict != TrendStable || s.FirstBad != "" {
		t.Errorf("flat series: %+v", s)
	}
	if len(rep.Drifting()) != 0 {
		t.Error("flat store reported drift")
	}
}

func TestTrendDetectsDriftAndFirstBad(t *testing.T) {
	// Three identical healthy runs, then a sustained doubling: a 2-of-5
	// level shift is significant at alpha 0.10 and the changepoint is the
	// fourth run.
	rep, err := Trend(trendViews(1, 1, 1, 2, 2), TrendOptions{Alpha: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Series[0]
	if s.Verdict != TrendUp {
		t.Fatalf("level shift at alpha 0.10: %+v", s)
	}
	if s.FirstBad != "r0004" {
		t.Errorf("first-bad = %q, want r0004", s.FirstBad)
	}
	// The same shift is not significant at the default 95% level (the
	// t-statistic of a 2-of-5 shift is 3.0 < 3.182 regardless of size).
	rep, err = Trend(trendViews(1, 1, 1, 2, 2), TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Series[0].Verdict; got != TrendStable {
		t.Errorf("level shift at alpha 0.05: %s", got)
	}
}

func TestTrendDetectsImprovementDirection(t *testing.T) {
	rep, err := Trend(trendViews(2, 2, 2, 1, 1), TrendOptions{Alpha: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Series[0]
	if s.Verdict != TrendDown || s.FirstBad != "r0004" {
		t.Errorf("falling cost: %+v", s)
	}
}

func TestTrendMinEffectFloorsSmallDrift(t *testing.T) {
	// A clean monotone ramp is always significant; a 1%-per-run ramp
	// stays under a 20% effect floor.
	rep, err := Trend(trendViews(1.00, 1.01, 1.02, 1.03, 1.04), TrendOptions{MinEffect: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Series[0]; s.Verdict != TrendStable {
		t.Errorf("1%%/run ramp under 20%% floor: %+v", s)
	}
	rep, err = Trend(trendViews(1, 2, 3, 4, 5), TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Series[0]; s.Verdict != TrendUp {
		t.Errorf("steep ramp: %+v", s)
	}
}

func TestTrendPartialPairReported(t *testing.T) {
	views := trendViews(1, 1, 1)
	extra := rateArchive("m", 100, flat(40, 1.0))
	appendSeries(extra, "m_partial", flat(40, 1.0))
	views = append(views, NewRunView(extra, RunMeta{ID: "r0004", Program: "synthetic"}))
	rep, err := Trend(views, TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var partial *SeriesTrend
	for i := range rep.Series {
		if rep.Series[i].Pair.Metric == "m_partial" {
			partial = &rep.Series[i]
		}
	}
	if partial == nil {
		t.Fatalf("partial pair dropped: %+v", rep.Series)
	}
	if partial.Verdict != TrendSkipped || !strings.Contains(partial.Skipped, "1 of 4 runs") {
		t.Errorf("partial pair: %s %q", partial.Verdict, partial.Skipped)
	}
}

func TestTrendErrors(t *testing.T) {
	if _, err := Trend(trendViews(1, 1), TrendOptions{}); err == nil {
		t.Error("2-run trend accepted")
	}
	if _, err := Trend(trendViews(1, 1, 1), TrendOptions{Alpha: 0.2}); err == nil {
		t.Error("unsupported alpha accepted")
	}
	if _, err := Trend(trendViews(1, 1, 1), TrendOptions{MinEffect: -0.1}); err == nil {
		t.Error("negative min-effect accepted")
	}
}

func TestTrendRenderDeterministic(t *testing.T) {
	mk := func() string {
		rep, err := Trend(trendViews(1, 1, 1, 2, 2), TrendOptions{Alpha: 0.10})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	r := mk()
	if r != mk() {
		t.Error("trend render differs across identical rebuilds")
	}
	for _, want := range []string{"perfdb trend: synthetic over 5 runs", "DRIFTING-UP", "first-bad r0004", "1 series fit, 1 drifting"} {
		if !strings.Contains(r, want) {
			t.Errorf("render lacks %q:\n%s", want, r)
		}
	}
}

func TestTrendJSONRoundTrip(t *testing.T) {
	rep, err := Trend(trendViews(1, 1, 1, 2, 2), TrendOptions{Alpha: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Program string `json:"program"`
		Runs    []struct {
			ID string `json:"id"`
		} `json:"runs"`
		Alpha  float64 `json:"alpha"`
		Series []struct {
			Metric   string    `json:"metric"`
			Verdict  string    `json:"verdict"`
			Rates    []float64 `json:"rates"`
			Slope    float64   `json:"slope"`
			FirstBad string    `json:"first_bad"`
		} `json:"series"`
		Fit      int `json:"fit"`
		Drifting int `json:"drifting"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if doc.Program != "synthetic" || len(doc.Runs) != 5 || doc.Alpha != 0.10 {
		t.Errorf("doc header: %+v", doc)
	}
	s := doc.Series[0]
	if s.Metric != "m" || s.Verdict != "DRIFTING-UP" || s.FirstBad != "r0004" || len(s.Rates) != 5 {
		t.Errorf("doc series: %+v", s)
	}
	if s.Slope <= 0 {
		t.Errorf("slope = %g", s.Slope)
	}
	if doc.Fit != 1 || doc.Drifting != 1 {
		t.Errorf("counts: fit=%d drifting=%d", doc.Fit, doc.Drifting)
	}
}

func TestDiffJSONRoundTrip(t *testing.T) {
	base, neu := goldenPair()
	rep, err := Compare(base, neu, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rep.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Base struct {
			ID string `json:"id"`
		} `json:"base"`
		Window *struct{} `json:"window"`
		Alpha  float64   `json:"alpha"`
		Deltas []struct {
			Metric    string     `json:"metric"`
			Verdict   string     `json:"verdict"`
			Reason    string     `json:"reason"`
			RelChange *float64   `json:"rel_change"`
			CI        [2]float64 `json:"ci"`
		} `json:"deltas"`
		OnlyBase    []struct{} `json:"only_base"`
		OnlyNew     []struct{} `json:"only_new"`
		Pairs       int        `json:"pairs"`
		Significant int        `json:"significant"`
		Regressions int        `json:"regressions"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if doc.Base.ID != "base" || doc.Window != nil || doc.Alpha != 0.05 {
		t.Errorf("doc header: %+v", doc)
	}
	if doc.Pairs != 4 || doc.Significant != 2 || doc.Regressions != 1 {
		t.Errorf("summary: %+v", doc)
	}
	byName := map[string]string{}
	for _, d := range doc.Deltas {
		byName[d.Metric] = d.Verdict
	}
	if byName["m_reg"] != "REGRESSION" || byName["m_imp"] != "improvement" ||
		byName["m_same"] != "unchanged" || byName["m_short"] != "skipped" {
		t.Errorf("verdicts: %v", byName)
	}
	if len(doc.OnlyBase) != 1 || len(doc.OnlyNew) != 1 {
		t.Errorf("one-sided pairs: %+v", doc)
	}
	// A rise from zero has no finite relative change: the field must be
	// absent, not NaN (NaN would make the whole document invalid).
	zbase := view(rateArchive("mz", 100, flat(40, 0)), "zb")
	znew := view(rateArchive("mz", 100, flat(40, 1.0)), "zn")
	zrep, err := Compare(zbase, znew, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(zrep.Deltas[0].RelChange) {
		t.Fatalf("rise-from-zero rel change: %+v", zrep.Deltas[0])
	}
	zraw, err := zrep.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(zraw), "NaN") {
		t.Errorf("NaN leaked into JSON:\n%s", zraw)
	}
	var zdoc struct {
		Deltas []map[string]any `json:"deltas"`
	}
	if err := json.Unmarshal(zraw, &zdoc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, present := zdoc.Deltas[0]["rel_change"]; present {
		t.Error("rel_change present for a rise-from-zero delta")
	}
}

func TestShowJSON(t *testing.T) {
	rv := view(rateArchive("m", 100, flat(40, 1.0)), "r0001")
	raw, err := rv.SummaryJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Run struct {
			ID string `json:"id"`
		} `json:"run"`
		Coverage float64 `json:"coverage"`
		Series   []struct {
			Metric    string  `json:"metric"`
			Total     float64 `json:"total"`
			Bins      int     `json:"bins"`
			BinWidthS float64 `json:"bin_width_s"`
		} `json:"series"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if doc.Run.ID != "r0001" || len(doc.Series) != 1 {
		t.Errorf("doc: %+v", doc)
	}
	if s := doc.Series[0]; s.Metric != "m" || s.Total != 40 || s.Bins != 40 || s.BinWidthS != 0.05 {
		t.Errorf("series: %+v", s)
	}
}
