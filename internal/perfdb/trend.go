package perfdb

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pperf/internal/stats"
)

// Store-wide trend queries: where the diff plane asks "did this run
// change against that one?", the trend plane asks "how has this series
// moved over every stored run of the program?". For each metric-focus
// pair shared by all the runs, the per-run mean interior rate (the
// paper's export-and-calculate scalar, endpoints excluded) is fit
// against the run index with an ordinary-least-squares line, and the
// slope's confidence interval delivers the verdict: STABLE when it
// contains zero, DRIFTING-UP/-DOWN otherwise. The metrics measure costs,
// so DRIFTING-UP is the bad direction. A drifting series also gets
// first-bad-run attribution: the earliest run whose rate departs from
// the mean of the runs before it by more than the effect floor.

// TrendVerdict classifies one series' movement across the run sequence.
type TrendVerdict string

const (
	// TrendStable: the slope's CI contains zero.
	TrendStable TrendVerdict = "STABLE"
	// TrendUp: the rate is rising significantly (costs grow — the bad
	// direction).
	TrendUp TrendVerdict = "DRIFTING-UP"
	// TrendDown: the rate is falling significantly.
	TrendDown TrendVerdict = "DRIFTING-DOWN"
	// TrendSkipped: the series could not be fit (reason in Skipped).
	TrendSkipped TrendVerdict = "skipped"
)

// Drifting reports whether the verdict flags a significant drift.
func (v TrendVerdict) Drifting() bool { return v == TrendUp || v == TrendDown }

// TrendOptions parameterize a store-wide trend query.
type TrendOptions struct {
	// Alpha is the two-sided significance level of the slope test: 0.10,
	// 0.05 or 0.01 (0 means 0.05).
	Alpha float64
	// MinEffect suppresses drift verdicts whose |relative slope| (slope
	// per run over the mean rate) falls below it, and sets the
	// first-bad-run attribution threshold. 0 means DefaultTrendEffect.
	MinEffect float64
}

// DefaultTrendEffect is the relative departure a run must show over the
// runs before it to be named the first bad run.
const DefaultTrendEffect = 0.10

// SeriesTrend is one metric-focus pair's movement across the runs.
type SeriesTrend struct {
	Pair    Pair
	Verdict TrendVerdict
	// Skipped holds the reason when Verdict == TrendSkipped.
	Skipped string

	// Rates holds the per-run mean interior rates (units/s), one per run
	// in run order.
	Rates []float64
	// Slope is the fitted rate change per run index; CI its confidence
	// interval at the query's significance level.
	Slope float64
	CI    stats.Interval
	// RelSlope is Slope relative to the mean rate (NaN when the mean is
	// 0 and the slope is not).
	RelSlope float64

	// FirstBad names the changepoint run for a drifting series: the
	// earliest run whose rate departs from the mean of the preceding
	// runs, in the drift's direction, by more than the effect floor.
	// Empty when no single run crosses the floor (a smooth creep).
	FirstBad string
}

// TrendReport is the ranked outcome of a store-wide trend query.
type TrendReport struct {
	// Program is the queried program; Runs the index entries of its
	// stored runs, in store (run-index) order.
	Program string
	Runs    []RunMeta

	// Alpha and MinEffect echo the query's effective thresholds.
	Alpha     float64
	MinEffect float64

	// Series holds every pair: drifting first (largest |RelSlope|
	// first), then stable, then skipped; ties broken by pair name so the
	// report is byte-deterministic.
	Series []SeriesTrend
}

// Drifting returns the series with a drift verdict, in rank order.
func (r *TrendReport) Drifting() []SeriesTrend {
	var out []SeriesTrend
	for _, s := range r.Series {
		if s.Verdict.Drifting() {
			out = append(out, s)
		}
	}
	return out
}

// Trend fits every shared metric-focus series across the views (one per
// stored run, in run order) and delivers per-series drift verdicts. At
// least three runs are required for the slope to carry an error estimate.
func Trend(views []*RunView, opts TrendOptions) (*TrendReport, error) {
	if _, err := stats.TCritical(1, opts.Alpha); err != nil {
		return nil, fmt.Errorf("perfdb: %v", err)
	}
	if opts.MinEffect < 0 {
		return nil, fmt.Errorf("perfdb: negative min-effect %g", opts.MinEffect)
	}
	if len(views) < 3 {
		return nil, fmt.Errorf("perfdb: trend needs at least 3 runs, have %d", len(views))
	}
	rep := &TrendReport{
		Alpha:     opts.Alpha,
		MinEffect: opts.MinEffect,
	}
	if rep.Alpha == 0 {
		rep.Alpha = 0.05
	}
	if rep.MinEffect == 0 {
		rep.MinEffect = DefaultTrendEffect
	}
	for _, v := range views {
		rep.Runs = append(rep.Runs, v.Meta)
		if rep.Program == "" {
			rep.Program = v.Meta.Program
		}
	}
	// Pair universe: everything any run enabled, keyed for alignment;
	// pairs missing from some runs are reported, not silently dropped.
	type presence struct {
		pair Pair
		runs int
	}
	seen := map[string]*presence{}
	var order []string
	for _, v := range views {
		for _, p := range v.Pairs() {
			k := p.Key()
			if seen[k] == nil {
				seen[k] = &presence{pair: p}
				order = append(order, k)
			}
			seen[k].runs++
		}
	}
	sort.Strings(order)
	for _, k := range order {
		pr := seen[k]
		st := SeriesTrend{Pair: pr.pair}
		if pr.runs < len(views) {
			st.Verdict = TrendSkipped
			st.Skipped = fmt.Sprintf("collected in only %d of %d runs", pr.runs, len(views))
			rep.Series = append(rep.Series, st)
			continue
		}
		for _, v := range views {
			st.Rates = append(st.Rates, v.SeriesFor(pr.pair).Histogram().MeanRateExcludingEnds())
		}
		fit, err := stats.LinearTrend(st.Rates, rep.Alpha)
		if err != nil {
			st.Verdict = TrendSkipped
			st.Skipped = err.Error()
			rep.Series = append(rep.Series, st)
			continue
		}
		st.Slope = fit.Slope
		st.CI = fit.CI
		switch mean := stats.Mean(st.Rates); {
		case mean != 0:
			st.RelSlope = st.Slope / mean
		case st.Slope != 0:
			st.RelSlope = math.NaN()
		}
		significant := fit.Significant
		if significant && !math.IsNaN(st.RelSlope) && math.Abs(st.RelSlope) < rep.MinEffect {
			significant = false
		}
		switch {
		case !significant:
			st.Verdict = TrendStable
		case st.Slope > 0:
			st.Verdict = TrendUp
		default:
			st.Verdict = TrendDown
		}
		if st.Verdict.Drifting() {
			if i := firstBad(st.Rates, st.Slope > 0, rep.MinEffect); i > 0 {
				st.FirstBad = rep.Runs[i].ID
			}
		}
		rep.Series = append(rep.Series, st)
	}
	rankTrends(rep.Series)
	return rep, nil
}

// firstBad returns the index of the earliest run whose rate departs from
// the mean of the preceding runs, in the drift's direction, by more than
// the relative floor — the changepoint attribution. 0 means no single
// run crossed the floor.
func firstBad(rates []float64, up bool, floor float64) int {
	sum := rates[0]
	for i := 1; i < len(rates); i++ {
		mean := sum / float64(i)
		dev := rates[i] - mean
		if !up {
			dev = -dev
		}
		switch {
		case mean != 0 && dev/math.Abs(mean) > floor:
			return i
		case mean == 0 && dev > 0:
			// Departing from an all-zero prefix: any movement in the
			// drift's direction is infinite relative change.
			return i
		}
		sum += rates[i]
	}
	return 0
}

// rankTrends orders: drifting first by |RelSlope| descending (NaN ranks
// above every finite drift), then stable, then skipped; pair names break
// every tie.
func rankTrends(ss []SeriesTrend) {
	class := func(v TrendVerdict) int {
		switch {
		case v.Drifting():
			return 0
		case v == TrendStable:
			return 1
		default:
			return 2
		}
	}
	mag := func(s SeriesTrend) float64 {
		if math.IsNaN(s.RelSlope) {
			return math.Inf(1)
		}
		return math.Abs(s.RelSlope)
	}
	sort.SliceStable(ss, func(i, j int) bool {
		ci, cj := class(ss[i].Verdict), class(ss[j].Verdict)
		if ci != cj {
			return ci < cj
		}
		if ci == 0 {
			mi, mj := mag(ss[i]), mag(ss[j])
			if mi != mj {
				return mi > mj
			}
		}
		return ss[i].Pair.Key() < ss[j].Pair.Key()
	})
}

// describe renders one series as a report line.
func (s SeriesTrend) describe() string {
	name := fmt.Sprintf("%s @ %s", s.Pair.Metric, s.Pair.Focus)
	if s.Verdict == TrendSkipped {
		return fmt.Sprintf("%-13s %s: %s", s.Verdict, name, s.Skipped)
	}
	rel := "n/a"
	if !math.IsNaN(s.RelSlope) {
		rel = fmt.Sprintf("%+.1f%%", s.RelSlope*100)
	}
	line := fmt.Sprintf("%-13s %s: %.6g/s -> %.6g/s (slope %+.6g/s per run, %s of mean, CI %s)",
		s.Verdict, name, s.Rates[0], s.Rates[len(s.Rates)-1], s.Slope, rel, s.CI)
	if s.FirstBad != "" {
		line += fmt.Sprintf(" first-bad %s", s.FirstBad)
	}
	return line
}

// Render produces the ranked, byte-deterministic trend report.
func (r *TrendReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perfdb trend: %s over %d runs\n", orDash(r.Program), len(r.Runs))
	ids := make([]string, len(r.Runs))
	for i, m := range r.Runs {
		ids[i] = runTitle(m)
	}
	fmt.Fprintf(&b, "  runs: %s\n", strings.Join(ids, ", "))
	fmt.Fprintf(&b, "  alpha: %g, min-effect: %g\n", r.Alpha, r.MinEffect)
	if len(r.Series) == 0 {
		b.WriteString("no collected metric-focus pairs\n")
	}
	for _, s := range r.Series {
		b.WriteString("  " + s.describe() + "\n")
	}
	nDrift := len(r.Drifting())
	fmt.Fprintf(&b, "%d series fit, %d drifting\n", len(r.Series), nDrift)
	return b.String()
}
