// Package perfdb is the multi-run performance experiment store: chunked
// streaming session archives with delta-encoded sample batches and
// per-chunk CRC32 (this file and chunk.go), a bounded-memory recorder the
// live front end writes through (stream.go), an on-disk run index
// (store.go), and a cross-run diff engine that compares stored runs with
// the paper's §5.2.1.3 confidence-interval significance test (diff.go).
// See PERFDB.md.
package perfdb

import (
	"encoding/binary"
	"fmt"
	"math"

	"pperf/internal/datasource"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// Sample batches dominate archive volume, and their fields are massively
// redundant: a batch holds runs of samples for the same metric-focus pair,
// consecutive timestamps on the sampling grid, and values that move by
// small amounts. packSamples exploits all three with a per-batch string
// dictionary, zigzag-varint time deltas, and XOR-with-previous float bits
// (which round-trips floats exactly — an arithmetic delta of float64s does
// not). The result typically shrinks a batch several-fold before the
// chunk even reaches gob.

// packSamples encodes one sample batch:
//
//	uvarint n
//	uvarint dictLen; dict entries: uvarint len + bytes (first-use order)
//	per sample:
//	  uvarint metricIdx, codeIdx, machineIdx, syncIdx, procIdx
//	  zigzag-varint delta of Time vs the previous sample (first vs 0)
//	  uvarint Float64bits(Delta) XOR previous sample's Delta bits
//	  uvarint Float64bits(Value) XOR previous sample's Value bits
func packSamples(batch []datasource.Sample) []byte {
	var (
		out  []byte
		tmp  [binary.MaxVarintLen64]byte
		dict []string
		idx  = map[string]uint64{}
	)
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	intern := func(s string) uint64 {
		if i, ok := idx[s]; ok {
			return i
		}
		i := uint64(len(dict))
		idx[s] = i
		dict = append(dict, s)
		return i
	}
	// First pass interns every string so the dictionary can be emitted
	// before the sample records.
	type packed struct{ m, c, ma, sy, p uint64 }
	recs := make([]packed, len(batch))
	for i, sm := range batch {
		recs[i] = packed{
			m:  intern(sm.Metric),
			c:  intern(sm.Focus.CodePath),
			ma: intern(sm.Focus.MachinePath),
			sy: intern(sm.Focus.SyncPath),
			p:  intern(sm.Proc),
		}
	}
	put(uint64(len(batch)))
	put(uint64(len(dict)))
	for _, s := range dict {
		put(uint64(len(s)))
		out = append(out, s...)
	}
	var (
		prevT     int64
		prevDelta uint64
		prevValue uint64
	)
	for i, sm := range batch {
		r := recs[i]
		put(r.m)
		put(r.c)
		put(r.ma)
		put(r.sy)
		put(r.p)
		t := int64(sm.Time)
		n := binary.PutVarint(tmp[:], t-prevT)
		out = append(out, tmp[:n]...)
		prevT = t
		db := math.Float64bits(sm.Delta)
		put(db ^ prevDelta)
		prevDelta = db
		vb := math.Float64bits(sm.Value)
		put(vb ^ prevValue)
		prevValue = vb
	}
	return out
}

// unpackSamples decodes a packSamples blob. Every read is bounds-checked:
// corrupt or truncated input yields an error, never a panic and never an
// oversized allocation.
func unpackSamples(data []byte) ([]datasource.Sample, error) {
	pos := 0
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("perfdb: corrupt sample batch: bad uvarint at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	getI := func() (int64, error) {
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("perfdb: corrupt sample batch: bad varint at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	n64, err := getU()
	if err != nil {
		return nil, err
	}
	dictLen, err := getU()
	if err != nil {
		return nil, err
	}
	// Sanity: every dictionary entry needs ≥ 1 length byte, every sample
	// ≥ 8 bytes of record; refuse counts the input cannot possibly hold
	// before allocating for them.
	if dictLen > uint64(len(data)) {
		return nil, fmt.Errorf("perfdb: corrupt sample batch: dictionary of %d entries in %d bytes", dictLen, len(data))
	}
	if n64 > uint64(len(data)) {
		return nil, fmt.Errorf("perfdb: corrupt sample batch: %d samples in %d bytes", n64, len(data))
	}
	dict := make([]string, dictLen)
	for i := range dict {
		l, err := getU()
		if err != nil {
			return nil, err
		}
		if l > uint64(len(data)-pos) {
			return nil, fmt.Errorf("perfdb: corrupt sample batch: dictionary entry %d overruns input", i)
		}
		dict[i] = string(data[pos : pos+int(l)])
		pos += int(l)
	}
	str := func() (string, error) {
		i, err := getU()
		if err != nil {
			return "", err
		}
		if i >= uint64(len(dict)) {
			return "", fmt.Errorf("perfdb: corrupt sample batch: dictionary index %d of %d", i, len(dict))
		}
		return dict[i], nil
	}
	out := make([]datasource.Sample, 0, n64)
	var (
		prevT     int64
		prevDelta uint64
		prevValue uint64
	)
	for i := uint64(0); i < n64; i++ {
		var sm datasource.Sample
		var f resource.Focus
		if sm.Metric, err = str(); err != nil {
			return nil, err
		}
		if f.CodePath, err = str(); err != nil {
			return nil, err
		}
		if f.MachinePath, err = str(); err != nil {
			return nil, err
		}
		if f.SyncPath, err = str(); err != nil {
			return nil, err
		}
		sm.Focus = f
		if sm.Proc, err = str(); err != nil {
			return nil, err
		}
		dt, err := getI()
		if err != nil {
			return nil, err
		}
		prevT += dt
		sm.Time = sim.Time(prevT)
		db, err := getU()
		if err != nil {
			return nil, err
		}
		prevDelta ^= db
		sm.Delta = math.Float64frombits(prevDelta)
		vb, err := getU()
		if err != nil {
			return nil, err
		}
		prevValue ^= vb
		sm.Value = math.Float64frombits(prevValue)
		out = append(out, sm)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("perfdb: corrupt sample batch: %d trailing bytes", len(data)-pos)
	}
	return out, nil
}
