package perfdb

// Windowed-comparison edge cases: empty windows, windows past the run
// end, windows that exclude a series entirely, and the -since-fault
// anchor — including its hard error on a run with no fired faults.

import (
	"os"
	"strings"
	"testing"

	"pperf/internal/datasource"
	"pperf/internal/session"
	"pperf/internal/sim"
)

// appendSeries adds another metric's enable+samples to a synthetic
// archive (50ms sample spacing, like rateArchive).
func appendSeries(a *session.Archive, metricName string, deltas []float64) {
	a.Events = append(a.Events, session.Event{Kind: session.EvEnable, Metric: metricName, Focus: testFocus})
	for i, d := range deltas {
		a.Events = append(a.Events, session.Event{Kind: session.EvSamples, Samples: []datasource.Sample{{
			Metric: metricName, Focus: testFocus, Proc: "p{0}",
			Time: sim.Time(i) * sim.Time(50*sim.Millisecond), Delta: d, Value: d,
		}}})
	}
	a.Header.NumEvents = len(a.Events)
}

// goldenPair builds the verdict-diverse base/new pair the pre-redesign
// golden was generated from.
func goldenPair() (*RunView, *RunView) {
	baseArch := rateArchive("m_reg", 100, flat(40, 1.0))
	appendSeries(baseArch, "m_imp", flat(40, 2.0))
	appendSeries(baseArch, "m_same", flat(40, 1.0))
	appendSeries(baseArch, "m_short", flat(2, 1.0))
	appendSeries(baseArch, "only_base", flat(40, 1.0))
	newArch := rateArchive("m_reg", 100, flat(40, 2.0))
	appendSeries(newArch, "m_imp", flat(40, 1.0))
	appendSeries(newArch, "m_same", flat(40, 1.0))
	appendSeries(newArch, "m_short", flat(2, 2.0))
	appendSeries(newArch, "only_new", flat(40, 1.0))
	return view(baseArch, "base"), view(newArch, "new")
}

// TestCompareDefaultMatchesGolden pins the api_redesign compatibility
// bar: Compare with zero options (and the deprecated Diff wrapper) must
// render byte-identically to the report the pre-Compare code produced,
// captured in testdata/diff_default.golden.
func TestCompareDefaultMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/diff_default.golden")
	if err != nil {
		t.Fatal(err)
	}
	base, neu := goldenPair()
	rep, err := Compare(base, neu, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Render(); got != string(want) {
		t.Errorf("Compare(default) diverges from the pre-redesign golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if got := Diff(base, neu).Render(); got != string(want) {
		t.Errorf("Diff wrapper diverges from the pre-redesign golden:\n%s", got)
	}
}

func TestCompareEmptyWindowErrors(t *testing.T) {
	base := view(rateArchive("m", 100, flat(40, 1.0)), "base")
	neu := view(rateArchive("m", 100, flat(40, 2.0)), "new")
	if _, err := Compare(base, neu, CompareOptions{
		Window: Window{From: sim.Time(sim.Second), To: sim.Time(sim.Second)},
	}); err == nil || !strings.Contains(err.Error(), "empty window") {
		t.Errorf("empty window: err = %v", err)
	}
	if _, err := Compare(base, neu, CompareOptions{
		Window: Window{From: sim.Time(2 * sim.Second), To: sim.Time(sim.Second)},
	}); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestCompareWindowPastRunEnd(t *testing.T) {
	// 40 bins at 50ms end at 2s; a window starting at 10s overlaps
	// nothing. The pair must surface as NOT-COMPARABLE with a reason, not
	// vanish from the report.
	base := view(rateArchive("m", 100, flat(40, 1.0)), "base")
	neu := view(rateArchive("m", 100, flat(40, 2.0)), "new")
	rep, err := Compare(base, neu, CompareOptions{Window: Window{From: sim.Time(10 * sim.Second)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deltas) != 1 {
		t.Fatalf("deltas: %+v", rep.Deltas)
	}
	d := rep.Deltas[0]
	if d.Verdict != VerdictNotComparable || !strings.Contains(d.Skipped, "excludes every interior bin") {
		t.Errorf("past-end window: %s %q", d.Verdict, d.Skipped)
	}
	if !strings.Contains(rep.Render(), "NOT-COMPARABLE") {
		t.Error("render drops the not-comparable pair")
	}
	if !strings.Contains(rep.Render(), "window: [10.000s, end)") {
		t.Errorf("render lacks the window line:\n%s", rep.Render())
	}
}

func TestCompareWindowExcludesOneSeries(t *testing.T) {
	// m_long spans the whole 2s run; m_early stops at 0.5s. A [1s, 2s)
	// window still compares m_long but excludes every m_early bin.
	baseArch := rateArchive("m_long", 100, flat(40, 1.0))
	appendSeries(baseArch, "m_early", flat(10, 1.0))
	newArch := rateArchive("m_long", 100, flat(40, 3.0))
	appendSeries(newArch, "m_early", flat(10, 3.0))
	rep, err := Compare(view(baseArch, "base"), view(newArch, "new"), CompareOptions{
		Window: Window{From: sim.Time(sim.Second), To: sim.Time(2 * sim.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SeriesDelta{}
	for _, d := range rep.Deltas {
		byName[d.Pair.Metric] = d
	}
	if d := byName["m_long"]; d.Verdict != VerdictRegression {
		t.Errorf("m_long in window: %s %q", d.Verdict, d.Skipped)
	}
	if d := byName["m_early"]; d.Verdict != VerdictNotComparable || d.Skipped == "" {
		t.Errorf("m_early excluded by window: %s %q", d.Verdict, d.Skipped)
	}
}

func TestCompareWindowRestrictsBins(t *testing.T) {
	// Regression confined to [1s, 2s): the windowed comparison sees only
	// those bins and a rate jump from 20/s to 60/s.
	deltas := flat(40, 1.0)
	for i := 20; i < 40; i++ {
		deltas[i] = 3.0
	}
	base := view(rateArchive("m", 100, flat(40, 1.0)), "base")
	neu := view(rateArchive("m", 100, deltas), "new")
	rep, err := Compare(base, neu, CompareOptions{Window: Window{From: sim.Time(sim.Second)}})
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Deltas[0]
	if d.Verdict != VerdictRegression {
		t.Fatalf("windowed regression: %s %q", d.Verdict, d.Skipped)
	}
	// Interior bins are 1..38; the window keeps 20..38 — 19 bins.
	if d.Bins != 19 {
		t.Errorf("windowed bins = %d, want 19", d.Bins)
	}
	if d.BaseRate != 20 || d.NewRate != 60 {
		t.Errorf("windowed rates: %g/s -> %g/s, want 20 -> 60", d.BaseRate, d.NewRate)
	}
}

func TestSinceFaultAnchorsWindow(t *testing.T) {
	a := rateArchive("m", 100, flat(40, 1.0))
	deltas := flat(40, 1.0)
	for i := 24; i < 40; i++ {
		deltas[i] = 3.0
	}
	b := rateArchive("m", 100, deltas)
	b.Header.Meta["fault-log"] = "1.200s degrade-link *:* lat=1 bw=0.1"
	rep, err := Compare(view(a, "base"), view(b, "faulted"), CompareOptions{SinceFault: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Window.From != sim.Time(1200*sim.Millisecond) || !rep.SinceFault {
		t.Errorf("window = %+v sinceFault=%v, want anchored at 1.2s", rep.Window, rep.SinceFault)
	}
	if d := rep.Deltas[0]; d.Verdict != VerdictRegression || d.BaseRate != 20 || d.NewRate != 60 {
		t.Errorf("post-fault delta: %+v", d)
	}
	if !strings.Contains(rep.Render(), "anchored at the new run's first fired fault") {
		t.Errorf("render lacks the anchor note:\n%s", rep.Render())
	}
}

func TestSinceFaultWithoutFiredFaultsErrors(t *testing.T) {
	base := view(rateArchive("m", 100, flat(40, 1.0)), "base")
	neu := view(rateArchive("m", 100, flat(40, 2.0)), "new")
	_, err := Compare(base, neu, CompareOptions{SinceFault: true})
	if err == nil || !strings.Contains(err.Error(), "no fired faults") || !strings.Contains(err.Error(), "-from") {
		t.Errorf("since-fault without faults: err = %v (want a hard error with a -from hint)", err)
	}
	// A log holding only skipped entries must also refuse to anchor.
	b := rateArchive("m", 100, flat(40, 2.0))
	b.Header.Meta["fault-log"] = "1.000s hang-daemon node2: no hook, skipped"
	if _, err := Compare(base, view(b, "skippedonly"), CompareOptions{SinceFault: true}); err == nil {
		t.Error("skipped-only fault log anchored a window")
	}
	// And an explicit -from alongside -since-fault is ambiguous.
	c := rateArchive("m", 100, flat(40, 2.0))
	c.Header.Meta["fault-log"] = "1.000s kill-node node1"
	if _, err := Compare(base, view(c, "faulted"), CompareOptions{
		SinceFault: true, Window: Window{From: sim.Time(sim.Second)},
	}); err == nil {
		t.Error("since-fault combined with an explicit window start accepted")
	}
}

func TestCompareAlphaAndMinEffect(t *testing.T) {
	base := view(rateArchive("m", 100, flat(40, 1.0)), "base")
	slight := view(rateArchive("m", 100, flat(40, 1.05)), "slight")
	rep, err := Compare(base, slight, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deltas[0].Verdict != VerdictRegression {
		t.Fatalf("constant +5%% shift should be significant: %+v", rep.Deltas[0])
	}
	// MinEffect floors it back to unchanged.
	rep, err = Compare(base, slight, CompareOptions{MinEffect: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deltas[0].Verdict != VerdictUnchanged {
		t.Errorf("min-effect 0.10 kept a 5%% change significant: %+v", rep.Deltas[0])
	}
	if _, err := Compare(base, slight, CompareOptions{Alpha: 0.2}); err == nil {
		t.Error("unsupported alpha accepted")
	}
	if _, err := Compare(base, slight, CompareOptions{Alpha: 0.10}); err != nil {
		t.Errorf("alpha 0.10 refused: %v", err)
	}
	if _, err := Compare(base, slight, CompareOptions{MinEffect: -1}); err == nil {
		t.Error("negative min-effect accepted")
	}
}
