package perfdb_test

// Integration against the real harness: compacted archives must replay
// byte-identically to uncompacted ones, the streaming recorder must
// capture the same stream as the in-memory recorder, and a store of two
// recorded runs must produce a deterministic ranked regression report.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"pperf/internal/datasource"
	"pperf/internal/faults"
	"pperf/internal/mpi"
	"pperf/internal/perfdb"
	"pperf/internal/pperfmark"
	"pperf/internal/session"
)

// fingerprint renders everything a replay consumer observes about a
// Result, so two replays can be compared byte for byte.
func fingerprint(t *testing.T, res *pperfmark.Result) string {
	t.Helper()
	var b bytes.Buffer
	fmt.Fprintf(&b, "program=%s impl=%s runtime=%v probes=%d coverage=%.4f\n",
		res.Program, res.Impl, res.RunTime, res.ProbeExecs, res.Coverage)
	for _, ev := range res.FaultLog {
		fmt.Fprintln(&b, "fault:", ev)
	}
	if res.PC != nil {
		b.WriteString(res.PC.Render())
		b.WriteString(res.PC.RenderFull())
		b.WriteString(res.PC.Export().String())
		b.WriteByte('\n')
	}
	b.WriteString(res.Source.Hierarchy().Render())
	csv := res.Source.(interface {
		ExportCSV(s *datasource.Series) string
	})
	if res.BytesSent != nil {
		b.WriteString(csv.ExportCSV(res.BytesSent))
	}
	return b.String()
}

// record runs a program live with the in-memory recorder attached.
func record(t *testing.T, prog string, opt pperfmark.RunOptions) *session.Archive {
	t.Helper()
	rec := session.NewRecorder()
	opt.Record = rec
	if _, err := pperfmark.Run(prog, opt); err != nil {
		t.Fatal(err)
	}
	return rec.Archive()
}

// compact round-trips an archive through the chunked encoder.
func compact(t *testing.T, a *session.Archive) *session.Archive {
	t.Helper()
	var buf bytes.Buffer
	if err := perfdb.WriteArchive(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := perfdb.ReadArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Truncated {
		t.Fatal("compacted archive loaded as truncated")
	}
	return got
}

func replayFingerprint(t *testing.T, a *session.Archive) string {
	t.Helper()
	res, err := pperfmark.Replay(a)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(t, res)
}

// TestCompactionReplayIdentical is the acceptance bar: a delta-encoded
// chunked archive replays byte-for-byte identically to the uncompacted
// original — healthy run and fault run both.
func TestCompactionReplayIdentical(t *testing.T) {
	cases := []struct {
		name string
		opt  pperfmark.RunOptions
	}{
		{"healthy", pperfmark.RunOptions{Impl: mpi.LAM, Seed: 7}},
	}
	if plan, err := faults.Parse("t=2s kill-node node1"); err != nil {
		t.Fatal(err)
	} else {
		cases = append(cases, struct {
			name string
			opt  pperfmark.RunOptions
		}{"faulted", pperfmark.RunOptions{Impl: mpi.LAM, Seed: 7, Faults: plan}})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := record(t, "small-messages", tc.opt)
			orig := replayFingerprint(t, a)
			comp := replayFingerprint(t, compact(t, a))
			if orig != comp {
				i := 0
				for i < len(orig) && i < len(comp) && orig[i] == comp[i] {
					i++
				}
				t.Errorf("compacted replay diverges at byte %d: %q vs %q",
					i, tail(orig, i), tail(comp, i))
			}
		})
	}
}

func tail(s string, i int) string {
	lo, hi := i-60, i+60
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// TestStreamRecorderMatchesInMemory: two identically-seeded live runs,
// one recorded in memory, one streamed to disk in chunks, must replay to
// the same fingerprint.
func TestStreamRecorderMatchesInMemory(t *testing.T) {
	mem := record(t, "small-messages", pperfmark.RunOptions{Impl: mpi.LAM, Seed: 7})

	path := filepath.Join(t.TempDir(), "run.ppdb")
	srec, err := perfdb.NewStreamRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	srec.SetChunkEvents(32) // several chunk flushes over the run
	if _, err := pperfmark.Run("small-messages", pperfmark.RunOptions{Impl: mpi.LAM, Seed: 7, Record: srec}); err != nil {
		t.Fatal(err)
	}
	if err := srec.Close(); err != nil {
		t.Fatal(err)
	}
	if srec.PeakBufferedEvents() > 32 {
		t.Errorf("streaming recorder buffered %d events; chunk size is 32", srec.PeakBufferedEvents())
	}
	streamed, err := perfdb.LoadArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Header.NumEvents != mem.Header.NumEvents {
		t.Errorf("streamed %d events, in-memory %d", streamed.Header.NumEvents, mem.Header.NumEvents)
	}
	if a, b := replayFingerprint(t, mem), replayFingerprint(t, streamed); a != b {
		t.Error("streamed recording replays differently from the in-memory recording")
	}
}

// TestStoreDiffEndToEnd records a healthy and a degraded run of the same
// program into a store and checks the cross-run diagnosis: significant
// per-focus regressions, ranked, byte-deterministic across rebuilds.
func TestStoreDiffEndToEnd(t *testing.T) {
	st, err := perfdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runInto := func(label, faultSpec string) perfdb.RunMeta {
		t.Helper()
		opt := pperfmark.RunOptions{Impl: mpi.LAM, Seed: 7}
		if faultSpec != "" {
			plan, err := faults.Parse(faultSpec)
			if err != nil {
				t.Fatal(err)
			}
			opt.Faults = plan
		}
		rec, err := st.NewRecorder()
		if err != nil {
			t.Fatal(err)
		}
		opt.Record = rec
		res, err := pperfmark.Run("big-message", opt)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := st.Commit(rec, perfdb.AddMeta{Label: label, Verdict: res.PC.Export().String()})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	healthy := runInto("healthy", "")
	degraded := runInto("degraded", "t=500ms degrade-link * bw=0.1")
	if healthy.Faults != "" || degraded.Faults == "" {
		t.Errorf("fault plans in index: healthy=%q degraded=%q", healthy.Faults, degraded.Faults)
	}
	if healthy.Verdict == "" || degraded.Verdict == "" {
		t.Error("consultant verdicts missing from the index")
	}

	diffOnce := func() string {
		base, err := st.OpenRun("healthy")
		if err != nil {
			t.Fatal(err)
		}
		neu, err := st.OpenRun("degraded")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := perfdb.Compare(base, neu, perfdb.CompareOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Regressions()) == 0 {
			t.Fatal("bandwidth-degraded run produced no significant regressions")
		}
		// Significant deltas rank above unchanged ones.
		sawUnchanged := false
		for _, d := range rep.Deltas {
			switch d.Verdict {
			case perfdb.VerdictRegression, perfdb.VerdictImprovement:
				if sawUnchanged {
					t.Error("significant delta ranked below an unchanged one")
				}
			case perfdb.VerdictUnchanged:
				sawUnchanged = true
			}
		}
		return rep.Render()
	}
	r1, r2 := diffOnce(), diffOnce()
	if r1 != r2 {
		t.Error("diff report not byte-deterministic across rebuilds")
	}
}
