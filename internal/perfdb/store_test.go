package perfdb

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pperf/internal/sim"
)

func TestStoreAddListRemoveGC(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := syntheticArchive(rng, 200)

	m1, err := st.AddArchive(a, AddMeta{Label: "baseline", Verdict: "sync=true(0.9)"})
	if err != nil {
		t.Fatal(err)
	}
	if m1.ID != "r0001" || m1.Program != "synthetic" || m1.Events != 200 || m1.Bytes == 0 {
		t.Errorf("first run meta: %+v", m1)
	}
	m2, err := st.AddArchive(a, AddMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.ID != "r0002" {
		t.Errorf("second ID %q", m2.ID)
	}

	// Labels resolve like IDs; collisions are refused.
	if got, err := st.Get("baseline"); err != nil || got.ID != "r0001" {
		t.Errorf("Get(label) = %+v, %v", got, err)
	}
	if _, err := st.AddArchive(a, AddMeta{Label: "baseline"}); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := st.AddArchive(a, AddMeta{Label: "r0001"}); err == nil {
		t.Error("label shadowing an ID accepted")
	}

	// The index survives reopening.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if runs := st2.Runs(); len(runs) != 2 || runs[0].Verdict != "sync=true(0.9)" {
		t.Fatalf("reopened store: %+v", runs)
	}

	// Stored archives load and materialize.
	rv, err := st2.OpenRun("r0001")
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Pairs()) != 1 { // m1 enabled, m2's enable failed
		t.Errorf("pairs: %+v", rv.Pairs())
	}

	// Remove drops the entry and the file; GC sweeps strays.
	stray := filepath.Join(dir, "runs", "r0099.ppdb.tmp")
	if err := os.WriteFile(stray, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st2.Remove("r0002"); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Get("r0002"); err == nil {
		t.Error("removed run still resolves")
	}
	removed, err := st2.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "r0099.ppdb.tmp" {
		t.Errorf("GC removed %v", removed)
	}
	if _, err := os.Stat(st2.RunPath("r0001")); err != nil {
		t.Errorf("GC touched a referenced archive: %v", err)
	}
}

func TestStoreRecorderCommit(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.NewRecorder()
	if err != nil {
		t.Fatal(err)
	}
	rec.SetHistogram(100, 50*sim.Millisecond)
	src := syntheticArchive(rand.New(rand.NewSource(4)), 300)
	replayEventsInto(rec, src.Events)
	rec.SetMeta("program", "streamed")
	m, err := st.Commit(rec, AddMeta{Label: "live", Verdict: "cpu=false(0.1)"})
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != "r0001" || m.Program != "streamed" || m.Events != 300 {
		t.Errorf("committed meta: %+v", m)
	}
	rv, err := st.OpenRun("live")
	if err != nil {
		t.Fatal(err)
	}
	if rv.Meta.Verdict != "cpu=false(0.1)" {
		t.Errorf("verdict: %q", rv.Meta.Verdict)
	}

	// A second recorder reserves the next ID even though the first was
	// committed in between.
	rec2, err := st.NewRecorder()
	if err != nil {
		t.Fatal(err)
	}
	rec2.SetHistogram(0, 0)
	m2, err := st.Commit(rec2, AddMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.ID != "r0002" {
		t.Errorf("second recorder ID %q", m2.ID)
	}
}

func TestStoreRefusesNewerIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(`{"version":99,"next_id":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("version-99 index opened by a version-1 reader")
	}
}
