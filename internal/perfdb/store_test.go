package perfdb

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pperf/internal/sim"
)

func TestStoreAddListRemoveGC(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := syntheticArchive(rng, 200)

	m1, err := st.AddArchive(a, AddMeta{Label: "baseline", Verdict: "sync=true(0.9)"})
	if err != nil {
		t.Fatal(err)
	}
	if m1.ID != "r0001" || m1.Program != "synthetic" || m1.Events != 200 || m1.Bytes == 0 {
		t.Errorf("first run meta: %+v", m1)
	}
	m2, err := st.AddArchive(a, AddMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.ID != "r0002" {
		t.Errorf("second ID %q", m2.ID)
	}

	// Labels resolve like IDs; collisions are refused.
	if got, err := st.Get("baseline"); err != nil || got.ID != "r0001" {
		t.Errorf("Get(label) = %+v, %v", got, err)
	}
	if _, err := st.AddArchive(a, AddMeta{Label: "baseline"}); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := st.AddArchive(a, AddMeta{Label: "r0001"}); err == nil {
		t.Error("label shadowing an ID accepted")
	}

	// The index survives reopening.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if runs := st2.Runs(); len(runs) != 2 || runs[0].Verdict != "sync=true(0.9)" {
		t.Fatalf("reopened store: %+v", runs)
	}

	// Stored archives load and materialize.
	rv, err := st2.OpenRun("r0001")
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Pairs()) != 1 { // m1 enabled, m2's enable failed
		t.Errorf("pairs: %+v", rv.Pairs())
	}

	// Remove drops the entry and the file; GC sweeps strays.
	stray := filepath.Join(dir, "runs", "r0099.ppdb.tmp")
	if err := os.WriteFile(stray, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st2.Remove("r0002"); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Get("r0002"); err == nil {
		t.Error("removed run still resolves")
	}
	removed, err := st2.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "r0099.ppdb.tmp" {
		t.Errorf("GC removed %v", removed)
	}
	if _, err := os.Stat(st2.RunPath("r0001")); err != nil {
		t.Errorf("GC touched a referenced archive: %v", err)
	}
}

func TestStoreRecorderCommit(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.NewRecorder()
	if err != nil {
		t.Fatal(err)
	}
	rec.SetHistogram(100, 50*sim.Millisecond)
	src := syntheticArchive(rand.New(rand.NewSource(4)), 300)
	replayEventsInto(rec, src.Events)
	rec.SetMeta("program", "streamed")
	m, warn, err := st.Commit(rec, AddMeta{Label: "live", Verdict: "cpu=false(0.1)"})
	if err != nil {
		t.Fatal(err)
	}
	if warn != "" {
		t.Errorf("unexpected commit warning: %q", warn)
	}
	if m.ID != "r0001" || m.Program != "streamed" || m.Events != 300 {
		t.Errorf("committed meta: %+v", m)
	}
	rv, err := st.OpenRun("live")
	if err != nil {
		t.Fatal(err)
	}
	if rv.Meta.Verdict != "cpu=false(0.1)" {
		t.Errorf("verdict: %q", rv.Meta.Verdict)
	}

	// A second recorder reserves the next ID even though the first was
	// committed in between.
	rec2, err := st.NewRecorder()
	if err != nil {
		t.Fatal(err)
	}
	rec2.SetHistogram(0, 0)
	m2, _, err := st.Commit(rec2, AddMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.ID != "r0002" {
		t.Errorf("second recorder ID %q", m2.ID)
	}
}

// TestGCSparesLiveRecording is the regression test for GC deleting an
// in-flight `-db` recording's temp file: the recorder's reservation must
// pin the file for as long as it keeps being written.
func TestGCSparesLiveRecording(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.NewRecorder()
	if err != nil {
		t.Fatal(err)
	}
	src := syntheticArchive(rand.New(rand.NewSource(2)), 150)
	replayEventsInto(rec, src.Events)

	// A stray unrelated temp file proves GC is still sweeping while it
	// spares the live recording.
	stray := filepath.Join(dir, "runs", "r0099.ppdb.tmp")
	if err := os.WriteFile(stray, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := st.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "r0099.ppdb.tmp" {
		t.Fatalf("GC during a live recording removed %v; want only the stray", removed)
	}
	if _, err := os.Stat(rec.Path() + ".tmp"); err != nil {
		t.Fatalf("GC deleted the live recording's temp file: %v", err)
	}
	m, warn, err := st.Commit(rec, AddMeta{Label: "live"})
	if err != nil {
		t.Fatalf("commit after GC: %v", err)
	}
	if warn != "" {
		t.Errorf("unexpected warning: %q", warn)
	}
	if a, err := st.Load(m.ID); err != nil || a.Header.NumEvents != 150 {
		t.Fatalf("recording damaged: %v (archive %+v)", err, a)
	}
	if removed, err := st.GC(); err != nil || len(removed) != 0 {
		t.Errorf("GC after commit removed %v, err %v", removed, err)
	}
}

// TestGCReclaimsCrashedRecording: a reservation whose temp file has gone
// quiet past GCTmpAge is a crashed recording — GC sweeps the file and
// releases the reservation, but never reuses the ID.
func TestGCReclaimsCrashedRecording(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.NewRecorder()
	if err != nil {
		t.Fatal(err)
	}
	replayEventsInto(rec, syntheticArchive(rand.New(rand.NewSource(3)), 40).Events)
	// Simulate the recording process having crashed two hours ago.
	tmp := rec.Path() + ".tmp"
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	removed, err := st.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "r0001.ppdb.tmp" {
		t.Fatalf("GC removed %v; want the crashed recording's temp file", removed)
	}
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "reserved") {
		t.Errorf("stale reservation not released: %s", data)
	}
	// The crashed ID is spent, not recycled: the next recording gets r0002.
	rec2, err := st.NewRecorder()
	if err != nil {
		t.Fatal(err)
	}
	if id := recorderID(rec2); id != "r0002" {
		t.Errorf("post-GC recorder got ID %q; want r0002", id)
	}
	st.Discard(rec2)
}

// TestCommitLabelCollisionPreservesRun is the regression test for Commit
// aborting (and thereby deleting) a fully recorded run when its label
// collided: the run must land unlabeled with a warning instead.
func TestCommitLabelCollisionPreservesRun(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if _, err := st.AddArchive(syntheticArchive(rng, 50), AddMeta{Label: "baseline"}); err != nil {
		t.Fatal(err)
	}
	rec, err := st.NewRecorder()
	if err != nil {
		t.Fatal(err)
	}
	src := syntheticArchive(rng, 120)
	replayEventsInto(rec, src.Events)
	m, warn, err := st.Commit(rec, AddMeta{Label: "baseline"})
	if err != nil {
		t.Fatalf("label collision destroyed the commit: %v", err)
	}
	if warn == "" || !strings.Contains(warn, "unlabeled") {
		t.Errorf("warning %q; want a label-collision note", warn)
	}
	if m.ID != "r0002" || m.Label != "" {
		t.Errorf("committed meta: %+v; want r0002 unlabeled", m)
	}
	if a, err := st.Load("r0002"); err != nil || a.Header.NumEvents != 120 {
		t.Fatalf("recorded data lost to the label collision: %v", err)
	}
	// The original owner of the label is untouched.
	if got, err := st.Get("baseline"); err != nil || got.ID != "r0001" {
		t.Errorf("Get(baseline) = %+v, %v", got, err)
	}
}

// TestFailedAddKeepsIDsSequential is the regression test for AddArchive
// consuming an ID on a failed write: the next successful add must get the
// very ID the failed one would have, leaving no hole.
func TestFailedAddKeepsIDsSequential(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := syntheticArchive(rng, 30)
	if m, err := st.AddArchive(a, AddMeta{}); err != nil || m.ID != "r0001" {
		t.Fatalf("first add: %+v, %v", m, err)
	}
	createRunFile = func(string) (*os.File, error) { return nil, errors.New("injected: disk full") }
	_, failErr := st.AddArchive(a, AddMeta{})
	createRunFile = os.Create
	if failErr == nil {
		t.Fatal("injected create failure did not fail the add")
	}
	m, err := st.AddArchive(a, AddMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != "r0002" {
		t.Errorf("add after a failed add got ID %q; want r0002 (no hole)", m.ID)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if runs := st2.Runs(); len(runs) != 2 || runs[0].ID != "r0001" || runs[1].ID != "r0002" {
		t.Errorf("reopened runs: %+v", runs)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("runs/ holds %d files; the failed add left debris", len(entries))
	}
}

// TestConcurrentStoreHandles drives several independent Store handles on
// one directory — the cross-process interleaving the advisory file lock
// exists for — and checks the index comes out complete and collision-free.
func TestConcurrentStoreHandles(t *testing.T) {
	dir := t.TempDir()
	const handles, perHandle = 4, 3
	errs := make(chan error, handles*perHandle)
	var wg sync.WaitGroup
	for i := 0; i < handles; i++ {
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(st *Store, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < perHandle; j++ {
				if _, err := st.AddArchive(syntheticArchive(rng, 40), AddMeta{}); err != nil {
					errs <- err
				}
			}
		}(st, int64(10+i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs := st.Runs()
	if len(runs) != handles*perHandle {
		t.Fatalf("stored %d runs; want %d", len(runs), handles*perHandle)
	}
	seen := map[string]bool{}
	for _, m := range runs {
		if seen[m.ID] {
			t.Fatalf("duplicate run ID %s", m.ID)
		}
		seen[m.ID] = true
		if _, err := st.Load(m.ID); err != nil {
			t.Errorf("run %s unreadable: %v", m.ID, err)
		}
	}
}

func TestStoreRefusesNewerIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(`{"version":99,"next_id":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("version-99 index opened by a version-1 reader")
	}
}
