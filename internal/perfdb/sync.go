package perfdb

// The PerfDB sync plane moves whole runs between stores over TCP, making
// a store the aggregation point for runs recorded on many machines:
//
//	pperf db serve  exposes a store at an address,
//	pperf db push   streams one local run to a served store,
//	pperf db pull   fetches one (or every) remote run into the local store.
//
// The wire discipline is the shared reliability plane in internal/wire —
// the same one under the daemon report transport: gob frames with
// per-connection sequence numbers, every data frame carrying a
// wire.Checksum of its payload (the same per-chunk integrity the PPDBA1
// file format uses), per-frame deadlines, and client-side retry with
// seeded jitter and a full redial on failure — a gob stream is stateful,
// so a failed connection is always replaced. Frames are offset-addressed
// and therefore idempotent: a frame replayed after a lost ack re-asserts
// bytes the peer already has, and the peer answers with its authoritative
// offset instead of double-applying — the sync plane's equivalent of the
// report transport's (daemon, channel) dedupe.
//
// Transfers are resumable at chunk granularity. An interrupted push leaves
// <dir>/sync/<hash>.partial on the server, an interrupted pull leaves the
// same on the client; the next attempt asks where the peer got to and
// continues from there. Runs are content-addressed by the SHA-256 of the
// archive file (the chunked encoding is byte-deterministic), so re-pushing
// or re-pulling an identical run is a no-op, and a completed transfer is
// verified hash-whole before it is ingested — ingest assigns a fresh local
// ID and merges the peer's descriptive metadata into the local index.
//
// Sync traffic is fault-injectable from the same plan language as the
// report transport, through the wire plane's shared injection point:
// `drop-transport NAME n=K chan=sync` fails the next K frame sends, and
// `degrade-link` applies lat= as a per-frame delay and bw= as a seeded
// per-frame failure probability (see FAULTS.md).

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pperf/internal/faults"
	"pperf/internal/wire"
)

// SyncProtoVersion versions the sync wire protocol; a server refuses a
// newer client rather than misdecoding its frames.
const SyncProtoVersion = 1

// DefaultSyncChunkBytes is the default transfer granularity — the unit of
// resume and of per-frame CRC protection.
const DefaultSyncChunkBytes = 64 << 10

// Frame ops.
const (
	opHello = iota + 1
	opList
	opPushBegin
	opPushChunk
	opPushEnd
	opPullChunk
)

func opName(op int) string {
	switch op {
	case opHello:
		return "hello"
	case opList:
		return "list"
	case opPushBegin:
		return "push-begin"
	case opPushChunk:
		return "push-chunk"
	case opPushEnd:
		return "push-end"
	case opPullChunk:
		return "pull-chunk"
	}
	return fmt.Sprintf("op(%d)", op)
}

// syncReq is the client→server frame. Every frame carries a per-connection
// sequence number; chunk frames carry a CRC of their payload so transit
// corruption is caught per frame, exactly like the archive's chunk framing.
type syncReq struct {
	Op  int
	Seq uint64

	Proto  int     // opHello: client protocol version
	ID     string  // opPullChunk: remote run ID or label
	Hash   string  // content address of the run being transferred
	Size   int64   // opPushBegin: total size; opPullChunk: max chunk bytes
	Offset int64   // chunk frames: byte offset of Data
	Data   []byte  // opPushChunk payload
	CRC    uint32  // wire.Checksum of Data
	Meta   RunMeta // opPushEnd: descriptive metadata for the ingested run
}

// syncResp is the server→client frame.
type syncResp struct {
	OK  bool
	Err string

	Proto   int       // opHello: server protocol version
	Runs    []RunMeta // opList
	Have    bool      // opPushBegin/opPushEnd: content already stored
	Offset  int64     // authoritative byte count the server holds
	Size    int64     // opPullChunk: total archive size
	Data    []byte    // opPullChunk payload
	CRC     uint32    // wire.Checksum of Data
	EOF     bool      // opPullChunk: Data reaches the end of the archive
	ID      string    // opPushBegin/opPushEnd: run ID at the server
	Warning string    // opPushEnd: label collision note etc.
}

// SyncConfig tunes the client side of Push/Pull. The retry knobs mirror
// wire.Config: equal seeds give identical retry schedules.
type SyncConfig struct {
	// MsgTimeout is the wall-clock deadline for one frame exchange.
	MsgTimeout time.Duration
	// MaxAttempts bounds tries per frame (first send included).
	MaxAttempts int
	// BaseBackoff/MaxBackoff bound the exponential delay between
	// attempts.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the jitter RNG (and the degrade-link failure draw when
	// no plan seed overrides it).
	Seed uint64
	// ChunkBytes is the transfer granularity (0 = DefaultSyncChunkBytes).
	ChunkBytes int
	// Faults optionally shapes sync traffic from a fault plan:
	// `drop-transport NAME n=K chan=sync` fails the next K frame sends,
	// `degrade-link ... lat=L` sleeps L milliseconds before each frame, and
	// `degrade-link ... bw=B` fails each frame with seeded probability 1-B.
	// The plan's seed drives both RNG streams, so a faulted sync is
	// exactly reproducible.
	Faults *faults.Plan
	// FaultHook, when set, is consulted before every attempt; a non-nil
	// return fails that attempt. Tests use it to cut a transfer at an
	// exact frame.
	FaultHook func(op string, seq uint64, attempt int) error
}

// DefaultSyncConfig returns production-shaped sync behaviour.
func DefaultSyncConfig() SyncConfig {
	return SyncConfig{
		MsgTimeout:  2 * time.Second,
		MaxAttempts: 5,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		Seed:        1,
		ChunkBytes:  DefaultSyncChunkBytes,
	}
}

// SyncStats counts one sync session's resilience activity — the wire
// plane's uniform Stats block.
type SyncStats = wire.Stats

// syncClient is one retrying, reconnecting frame channel to a sync server:
// a wire.Conn plus the sync channel's fault-injection point.
type syncClient struct {
	cfg  SyncConfig
	conn *wire.Conn
	inj  *wire.Injection
}

// dialSync connects and handshakes protocol versions. The sync channel
// salts its jitter seed (wire.SaltSync) so its schedule is independent of
// the report transport's streams; a fault plan's seed overrides the
// configured one so a faulted sync is exactly reproducible.
func dialSync(addr string, cfg SyncConfig) (*syncClient, error) {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = DefaultSyncChunkBytes
	}
	if cfg.MsgTimeout <= 0 {
		cfg.MsgTimeout = 2 * time.Second
	}
	seed := cfg.Seed
	if cfg.Faults != nil {
		seed = cfg.Faults.Seed
	}
	c := &syncClient{cfg: cfg, inj: wire.NewInjection(wire.ChanSync)}
	c.inj.SeedBW(seed ^ wire.SaltSync ^ wire.SaltBW)
	c.armFaults(cfg.Faults)
	wcfg := wire.Config{
		MsgTimeout:  cfg.MsgTimeout,
		MaxAttempts: cfg.MaxAttempts,
		BaseBackoff: cfg.BaseBackoff,
		MaxBackoff:  cfg.MaxBackoff,
		Seed:        seed,
	}
	conn, err := wire.Dial(addr, wcfg, seed^wire.SaltSync)
	if err != nil {
		return nil, fmt.Errorf("perfdb sync: dial %s: %w", addr, err)
	}
	// An injected fault means the server never saw the frame: poison the
	// connection so the next attempt redials, as a real fault would.
	conn.SetPoisonOnFault(true)
	c.conn = conn
	resp, err := c.roundTrip(syncReq{Op: opHello, Proto: SyncProtoVersion})
	if err != nil {
		c.close()
		return nil, err
	}
	if resp.Proto > SyncProtoVersion {
		c.close()
		return nil, fmt.Errorf("perfdb sync: server speaks protocol %d; this build speaks %d", resp.Proto, SyncProtoVersion)
	}
	return c, nil
}

// armFaults translates a fault plan into the wire injection point's state.
func (c *syncClient) armFaults(p *faults.Plan) {
	if p == nil {
		return
	}
	for _, f := range p.Faults {
		switch f.Kind {
		case faults.DropTransport:
			if f.Chan == faults.ChanSync {
				c.inj.AddDrops(f.N)
			}
		case faults.DegradeLink:
			c.inj.Degrade(time.Duration(f.Lat*float64(time.Millisecond)), f.BW)
		}
	}
}

func (c *syncClient) close() { c.conn.Close() }

// stats snapshots the client's wire counters.
func (c *syncClient) stats() SyncStats { return c.conn.Stats() }

// faultCheck consults the test hook, then the shared injection point,
// before one attempt.
func (c *syncClient) faultCheck(op string, seq uint64, attempt int) error {
	if c.cfg.FaultHook != nil {
		if err := c.cfg.FaultHook(op, seq, attempt); err != nil {
			return err
		}
	}
	return c.inj.Check()
}

// roundTrip sends one frame and waits for its response through the wire
// plane's retrying Exchange. A response that arrives with OK=false is a
// protocol-level refusal, not a transport fault, and is returned as a
// terminal error.
func (c *syncClient) roundTrip(req syncReq) (*syncResp, error) {
	var resp syncResp
	err := c.conn.Exchange(wire.Request{
		Req:   &req,
		Stamp: func(seq uint64) { req.Seq = seq },
		Resp:  &resp,
		Fault: func(attempt int) error { return c.faultCheck(opName(req.Op), req.Seq, attempt) },
		Label: "perfdb sync: " + opName(req.Op),
	})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New("perfdb sync: " + resp.Err)
	}
	return &resp, nil
}

// PushResult describes one completed push.
type PushResult struct {
	RunID     string // local run pushed
	RemoteID  string // the run's ID at the peer
	Deduped   bool   // the peer already had identical content
	ResumedAt int64  // byte offset the transfer resumed from (0 = fresh)
	Bytes     int64  // payload bytes actually transferred this invocation
	Warning   string // peer-side note (label collision, dedupe)
	Stats     SyncStats
}

// Push streams one stored run (ID or label) to the store served at addr.
func Push(st *Store, runID, addr string, cfg SyncConfig) (*PushResult, error) {
	if err := st.EnsureHashes(); err != nil {
		return nil, err
	}
	m, err := st.Get(runID)
	if err != nil {
		return nil, err
	}
	path := st.RunPath(m.ID)
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	c, err := dialSync(addr, cfg)
	if err != nil {
		return nil, err
	}
	defer c.close()
	res := &PushResult{RunID: m.ID}
	begin, err := c.roundTrip(syncReq{Op: opPushBegin, Hash: m.Hash, Size: size})
	if err != nil {
		res.Stats = c.stats()
		return res, err
	}
	if begin.Have {
		res.Deduped, res.RemoteID, res.Warning, res.Stats = true, begin.ID, begin.Warning, c.stats()
		return res, nil
	}
	res.ResumedAt = begin.Offset
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	offset := begin.Offset
	buf := make([]byte, c.cfg.ChunkBytes)
	// The server's response carries its authoritative byte count; the
	// loop converges even across replays and reconnect rewinds. The guard
	// bounds pathological no-progress exchanges.
	for guard := 4*(int(size)/c.cfg.ChunkBytes+1) + 16; offset < size; guard-- {
		if guard <= 0 {
			res.Stats = c.stats()
			return res, fmt.Errorf("perfdb sync: push of %s stalled at offset %d/%d", m.ID, offset, size)
		}
		n := int64(len(buf))
		if size-offset < n {
			n = size - offset
		}
		if _, err := f.ReadAt(buf[:n], offset); err != nil {
			res.Stats = c.stats()
			return res, err
		}
		resp, err := c.roundTrip(syncReq{
			Op: opPushChunk, Hash: m.Hash, Offset: offset,
			Data: buf[:n], CRC: wire.Checksum(buf[:n]),
		})
		if err != nil {
			res.Stats = c.stats()
			return res, err
		}
		if resp.Offset > offset {
			res.Bytes += resp.Offset - offset
		}
		offset = resp.Offset
	}
	meta := m
	meta.ID = "" // the peer assigns its own
	end, err := c.roundTrip(syncReq{Op: opPushEnd, Hash: m.Hash, Meta: meta})
	if err != nil {
		res.Stats = c.stats()
		return res, err
	}
	res.RemoteID, res.Warning, res.Deduped = end.ID, end.Warning, end.Have
	res.Stats = c.stats()
	return res, nil
}

// PullResult describes one run's pull outcome.
type PullResult struct {
	RemoteID  string
	LocalID   string
	Label     string
	Skipped   bool  // identical content was already in the local store
	ResumedAt int64 // byte offset the transfer resumed from
	Bytes     int64 // payload bytes actually transferred this invocation
	Warning   string
}

// Pull fetches runs from the store served at addr into st: one run (remote
// ID or label) when runID is non-empty, otherwise every remote run whose
// content the local store doesn't already hold. Each transferred archive
// is CRC-checked per chunk in transit, verified whole against its content
// hash, parsed for structural validity, and only then ingested under a
// fresh local ID.
func Pull(st *Store, addr, runID string, cfg SyncConfig) ([]PullResult, *SyncStats, error) {
	if err := st.EnsureHashes(); err != nil {
		return nil, nil, err
	}
	c, err := dialSync(addr, cfg)
	if err != nil {
		return nil, nil, err
	}
	defer c.close()
	fail := func(results []PullResult, err error) ([]PullResult, *SyncStats, error) {
		s := c.stats()
		return results, &s, err
	}
	list, err := c.roundTrip(syncReq{Op: opList})
	if err != nil {
		return fail(nil, err)
	}
	var want []RunMeta
	if runID == "" {
		want = list.Runs
	} else {
		for _, m := range list.Runs {
			if m.ID == runID || (m.Label != "" && m.Label == runID) {
				want = append(want, m)
				break
			}
		}
		if len(want) == 0 {
			return fail(nil, fmt.Errorf("perfdb sync: no run %q at %s", runID, addr))
		}
	}
	var results []PullResult
	for _, m := range want {
		r, err := pullOne(st, c, m)
		results = append(results, r)
		if err != nil {
			return fail(results, err)
		}
	}
	return fail(results, nil)
}

// pullOne transfers one remote run into the local store.
func pullOne(st *Store, c *syncClient, m RunMeta) (PullResult, error) {
	res := PullResult{RemoteID: m.ID, Label: m.Label}
	if existing, ok := st.FindByHash(m.Hash); ok {
		res.Skipped, res.LocalID = true, existing.ID
		return res, nil
	}
	if m.Hash == "" {
		return res, fmt.Errorf("perfdb sync: remote run %s has no content hash", m.ID)
	}
	if err := os.MkdirAll(st.syncDir(), 0o755); err != nil {
		return res, err
	}
	staging := filepath.Join(st.syncDir(), m.Hash+".partial")
	var offset int64
	if fi, err := os.Stat(staging); err == nil {
		offset = fi.Size()
	}
	res.ResumedAt = offset
	f, err := os.OpenFile(staging, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return res, err
	}
	for done := false; !done; {
		resp, err := c.roundTrip(syncReq{
			Op: opPullChunk, ID: m.ID, Hash: m.Hash,
			Offset: offset, Size: int64(c.cfg.ChunkBytes),
		})
		if err != nil {
			f.Close()
			return res, err
		}
		if wire.Checksum(resp.Data) != resp.CRC {
			// Payload corrupted in transit: re-request the same chunk.
			continue
		}
		if resp.Offset < offset {
			// Our partial outran the remote file (stale staging from a
			// different epoch); restart clean.
			f.Close()
			os.Remove(staging)
			return res, fmt.Errorf("perfdb sync: remote run %s shrank mid-pull; stale partial discarded, retry", m.ID)
		}
		if len(resp.Data) > 0 {
			if _, err := f.WriteAt(resp.Data, resp.Offset); err != nil {
				f.Close()
				return res, err
			}
			res.Bytes += int64(len(resp.Data))
			offset = resp.Offset + int64(len(resp.Data))
		}
		done = resp.EOF
	}
	if err := f.Close(); err != nil {
		return res, err
	}
	gotHash, err := fileSHA256(staging)
	if err != nil {
		return res, err
	}
	if gotHash != m.Hash {
		os.Remove(staging)
		return res, fmt.Errorf("perfdb sync: pulled run %s fails content verification (want %.12s, got %.12s)", m.ID, m.Hash, gotHash)
	}
	if _, err := LoadArchive(staging); err != nil {
		os.Remove(staging)
		return res, fmt.Errorf("perfdb sync: pulled run %s is not a valid archive: %w", m.ID, err)
	}
	lm, warn, err := st.IngestFile(staging, m)
	if err != nil {
		return res, err
	}
	res.LocalID, res.Label, res.Warning = lm.ID, lm.Label, warn
	return res, nil
}

// A SyncServer exposes one store to db push/pull peers over TCP.
type SyncServer struct {
	st *Store
	ln net.Listener
	wg sync.WaitGroup

	mu          sync.Mutex
	closed      bool
	readTimeout time.Duration
	// uploads serializes writers of one partial upload by content hash;
	// the wire lock table reaps entries as soon as the last holder
	// releases, so redial churn cannot grow it without bound.
	uploads *wire.LockTable
	frames  int64
	dups    int64
}

// Serve listens on addr ("127.0.0.1:0" picks a free port) and serves the
// store until Close. Store mutations triggered by peers go through the
// same advisory-locked paths the CLI uses, so a served store remains safe
// to use locally.
func Serve(st *Store, addr string) (*SyncServer, error) {
	if err := st.EnsureHashes(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("perfdb sync: listen: %w", err)
	}
	s := &SyncServer{
		st: st, ln: ln,
		readTimeout: 30 * time.Second,
		uploads:     wire.NewLockTable(),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		wire.AcceptLoop(s.ln, s.isClosed, nil, &s.wg, s.handle)
	}()
	return s, nil
}

// Addr returns the listening address.
func (s *SyncServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for connection handlers to finish.
func (s *SyncServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Frames returns how many request frames the server has processed.
func (s *SyncServer) Frames() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frames
}

// DuplicateFrames returns how many chunk frames re-asserted bytes the
// server already held — replays after lost acks, absorbed idempotently.
func (s *SyncServer) DuplicateFrames() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups
}

// UploadLocks returns how many per-content-hash upload locks are currently
// live — held or awaited right now; released entries are reaped.
func (s *SyncServer) UploadLocks() int { return s.uploads.Len() }

func (s *SyncServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// handle serves one connection: a request/response loop with per-frame
// read deadlines so a wedged peer cannot park the goroutine forever.
func (s *SyncServer) handle(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var lastSeq uint64
	for {
		var req syncReq
		if _, err := wire.ReadFrame(conn, dec, s.readTimeout, &req); err != nil {
			return
		}
		s.mu.Lock()
		s.frames++
		s.mu.Unlock()
		if req.Seq != 0 && req.Seq <= lastSeq {
			// A desynchronized stream replaying old frames; the ops are
			// idempotent, but a non-monotonic stream means the codec state
			// is suspect — drop the connection and let the client redial.
			return
		}
		lastSeq = req.Seq
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func syncErr(format string, args ...any) *syncResp {
	return &syncResp{Err: fmt.Sprintf(format, args...)}
}

func (s *SyncServer) dispatch(req *syncReq) *syncResp {
	switch req.Op {
	case opHello:
		if req.Proto > SyncProtoVersion {
			return syncErr("server speaks sync protocol %d, client %d", SyncProtoVersion, req.Proto)
		}
		return &syncResp{OK: true, Proto: SyncProtoVersion}
	case opList:
		return &syncResp{OK: true, Runs: s.st.Runs()}
	case opPushBegin:
		return s.pushBegin(req)
	case opPushChunk:
		return s.pushChunk(req)
	case opPushEnd:
		return s.pushEnd(req)
	case opPullChunk:
		return s.pullChunk(req)
	}
	return syncErr("unknown op %d", req.Op)
}

// partialPath is where an in-flight upload of the given content lives.
func (s *SyncServer) partialPath(hash string) string {
	return filepath.Join(s.st.syncDir(), hash+".partial")
}

func (s *SyncServer) pushBegin(req *syncReq) *syncResp {
	if !wire.ValidHash(req.Hash) {
		return syncErr("push-begin: bad content hash %q", req.Hash)
	}
	if m, ok := s.st.FindByHash(req.Hash); ok {
		return &syncResp{OK: true, Have: true, ID: m.ID, Warning: fmt.Sprintf("identical content already stored as %s", m.ID)}
	}
	release := s.uploads.Acquire(req.Hash)
	defer release()
	if err := os.MkdirAll(s.st.syncDir(), 0o755); err != nil {
		return syncErr("push-begin: %v", err)
	}
	var offset int64
	if fi, err := os.Stat(s.partialPath(req.Hash)); err == nil {
		offset = fi.Size()
		if offset > req.Size {
			// A stale partial from different content that happened to
			// collide is impossible (hash-named), but a corrupt oversized
			// one is not worth salvaging.
			os.Remove(s.partialPath(req.Hash))
			offset = 0
		}
	}
	return &syncResp{OK: true, Offset: offset}
}

func (s *SyncServer) pushChunk(req *syncReq) *syncResp {
	if !wire.ValidHash(req.Hash) {
		return syncErr("push-chunk: bad content hash %q", req.Hash)
	}
	if wire.Checksum(req.Data) != req.CRC {
		return syncErr("push-chunk: CRC mismatch at offset %d", req.Offset)
	}
	release := s.uploads.Acquire(req.Hash)
	defer release()
	path := s.partialPath(req.Hash)
	var cur int64
	if fi, err := os.Stat(path); err == nil {
		cur = fi.Size()
	}
	end := req.Offset + int64(len(req.Data))
	if end <= cur {
		// Replay of bytes already held (a lost ack); answer with the
		// authoritative offset instead of double-applying.
		s.mu.Lock()
		s.dups++
		s.mu.Unlock()
		return &syncResp{OK: true, Offset: cur}
	}
	if req.Offset > cur {
		// A gap: the client is ahead of us (our partial was GC'd between
		// its frames, say). Answer with where we actually are; the client
		// rewinds.
		return &syncResp{OK: true, Offset: cur}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return syncErr("push-chunk: %v", err)
	}
	defer f.Close()
	// Write only the unseen suffix, at the position it belongs.
	if _, err := f.WriteAt(req.Data[cur-req.Offset:], cur); err != nil {
		return syncErr("push-chunk: %v", err)
	}
	return &syncResp{OK: true, Offset: end}
}

func (s *SyncServer) pushEnd(req *syncReq) *syncResp {
	if !wire.ValidHash(req.Hash) {
		return syncErr("push-end: bad content hash %q", req.Hash)
	}
	release := s.uploads.Acquire(req.Hash)
	defer release()
	// A replayed push-end after the ingest already happened dedupes via
	// the content address.
	if m, ok := s.st.FindByHash(req.Hash); ok {
		os.Remove(s.partialPath(req.Hash))
		return &syncResp{OK: true, Have: true, ID: m.ID}
	}
	path := s.partialPath(req.Hash)
	gotHash, err := fileSHA256(path)
	if err != nil {
		return syncErr("push-end: no complete upload for %.12s: %v", req.Hash, err)
	}
	if gotHash != req.Hash {
		return syncErr("push-end: upload fails content verification (want %.12s, got %.12s)", req.Hash, gotHash)
	}
	if _, err := LoadArchive(path); err != nil {
		os.Remove(path)
		return syncErr("push-end: upload is not a valid archive: %v", err)
	}
	meta := req.Meta
	meta.Hash = req.Hash
	m, warn, err := s.st.IngestFile(path, meta)
	if err != nil {
		return syncErr("push-end: ingest: %v", err)
	}
	return &syncResp{OK: true, ID: m.ID, Warning: warn}
}

func (s *SyncServer) pullChunk(req *syncReq) *syncResp {
	m, err := s.st.Get(req.ID)
	if err != nil {
		return syncErr("pull-chunk: %v", err)
	}
	if req.Hash != "" && m.Hash != req.Hash {
		return syncErr("pull-chunk: run %s content changed (hash mismatch)", m.ID)
	}
	f, err := os.Open(s.st.RunPath(m.ID))
	if err != nil {
		return syncErr("pull-chunk: %v", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return syncErr("pull-chunk: %v", err)
	}
	size := fi.Size()
	if req.Offset > size || req.Offset < 0 {
		return syncErr("pull-chunk: offset %d beyond archive size %d", req.Offset, size)
	}
	chunk := req.Size
	if chunk <= 0 || chunk > int64(maxChunkPayload) {
		chunk = DefaultSyncChunkBytes
	}
	n := size - req.Offset
	if n > chunk {
		n = chunk
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, req.Offset, n), data); err != nil {
		return syncErr("pull-chunk: read: %v", err)
	}
	return &syncResp{
		OK: true, Data: data, CRC: wire.Checksum(data),
		Offset: req.Offset, Size: size, EOF: req.Offset+n == size,
	}
}
