package perfdb

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pperf/internal/metric"
	"pperf/internal/sim"
	"pperf/internal/stats"
)

// Cross-run regression diagnosis: align the metric-focus pairs two stored
// runs share, compare their histogram series bin-by-bin with the paper's
// §5.2.1.3 paired-difference test (is zero inside the 95% confidence
// interval of the mean per-bin difference?), and rank the significant
// changes. The metrics this tool collects measure costs — wait fractions,
// transferred bytes, operation counts — so a significant rate increase is
// reported as a regression and a significant decrease as an improvement.

// Verdict classifies one aligned pair's change.
type Verdict string

const (
	// VerdictRegression: the rate rose and the CI excludes zero.
	VerdictRegression Verdict = "REGRESSION"
	// VerdictImprovement: the rate fell and the CI excludes zero.
	VerdictImprovement Verdict = "improvement"
	// VerdictUnchanged: the CI contains zero.
	VerdictUnchanged Verdict = "unchanged"
	// VerdictSkipped: the pair could not be compared (reason in Skipped).
	VerdictSkipped Verdict = "skipped"
)

// SeriesDelta is the comparison of one metric-focus pair across two runs.
type SeriesDelta struct {
	Pair    Pair
	Verdict Verdict
	// Skipped holds the reason when Verdict == VerdictSkipped.
	Skipped string

	// BaseRate and NewRate are the mean interior per-bin rates (units/s)
	// at the common bin width; endpoint bins are excluded, as the paper
	// does, because collection start/end fall somewhere inside them.
	BaseRate, NewRate float64
	// MeanDiff is the mean per-bin rate difference, new minus base.
	MeanDiff float64
	// CI is the 95% confidence interval of MeanDiff.
	CI stats.Interval
	// RelChange is MeanDiff relative to BaseRate (NaN when BaseRate is 0
	// and the rates differ; ranked last among equals).
	RelChange float64

	// Bins is the number of interior bins compared; BinWidth the common
	// granularity both series were rebinned to.
	Bins     int
	BinWidth sim.Duration
}

// DiffReport is the ranked outcome of comparing two stored runs.
type DiffReport struct {
	Base, New RunMeta

	// Deltas holds every pair present in both runs: significant changes
	// first (largest |RelChange| first), then unchanged, then skipped;
	// ties broken by pair name so the report is byte-deterministic.
	Deltas []SeriesDelta

	// OnlyBase and OnlyNew list pairs enabled in just one of the runs.
	OnlyBase, OnlyNew []Pair
}

// Regressions returns the deltas with a regression verdict, in rank order.
func (r *DiffReport) Regressions() []SeriesDelta {
	var out []SeriesDelta
	for _, d := range r.Deltas {
		if d.Verdict == VerdictRegression {
			out = append(out, d)
		}
	}
	return out
}

// Diff compares two materialized runs, base against new.
func Diff(base, neu *RunView) *DiffReport {
	rep := &DiffReport{Base: base.Meta, New: neu.Meta}
	basePairs := base.Pairs()
	newKeys := map[string]bool{}
	for _, p := range neu.Pairs() {
		newKeys[p.Key()] = true
	}
	baseKeys := map[string]bool{}
	for _, p := range basePairs {
		baseKeys[p.Key()] = true
	}
	for _, p := range neu.Pairs() {
		if !baseKeys[p.Key()] {
			rep.OnlyNew = append(rep.OnlyNew, p)
		}
	}
	for _, p := range basePairs {
		if !newKeys[p.Key()] {
			rep.OnlyBase = append(rep.OnlyBase, p)
			continue
		}
		rep.Deltas = append(rep.Deltas, comparePair(p,
			base.SeriesFor(p).Histogram(), neu.SeriesFor(p).Histogram()))
	}
	rankDeltas(rep.Deltas)
	return rep
}

// comparePair runs the paired-difference test over one pair's two
// histograms.
func comparePair(p Pair, hb, hn *metric.Histogram) SeriesDelta {
	d := SeriesDelta{Pair: p}
	rb, rn, width, reason := alignRates(hb, hn)
	if reason != "" {
		d.Verdict = VerdictSkipped
		d.Skipped = reason
		return d
	}
	d.BinWidth = width
	d.Bins = len(rb)
	d.BaseRate = stats.Mean(rb)
	d.NewRate = stats.Mean(rn)
	// PairedDiff computes a-b, so pass the new run first: MeanDiff > 0
	// means the rate rose.
	pr, err := stats.PairedDiff(rn, rb)
	if err != nil {
		d.Verdict = VerdictSkipped
		d.Skipped = err.Error()
		return d
	}
	d.MeanDiff = pr.MeanDiff
	d.CI = pr.CI
	switch {
	case d.BaseRate != 0:
		d.RelChange = d.MeanDiff / d.BaseRate
	case d.MeanDiff != 0:
		d.RelChange = math.NaN() // rose from zero: infinite relative change
	}
	switch {
	case !pr.Significant:
		d.Verdict = VerdictUnchanged
	case d.MeanDiff > 0:
		d.Verdict = VerdictRegression
	default:
		d.Verdict = VerdictImprovement
	}
	return d
}

// alignRates rebins both histograms to the coarser common bin width,
// truncates to the shorter filled prefix, drops the endpoint bins, and
// returns the interior per-bin rates. A non-empty reason means the pair
// cannot be compared.
func alignRates(hb, hn *metric.Histogram) (rb, rn []float64, width sim.Duration, reason string) {
	if hb.NumFilled() == 0 || hn.NumFilled() == 0 {
		return nil, nil, 0, "no data in one or both runs"
	}
	width = hb.BinWidth()
	if hn.BinWidth() > width {
		width = hn.BinWidth()
	}
	vb, ok := rebin(hb, width)
	if !ok {
		return nil, nil, 0, fmt.Sprintf("incompatible bin widths %v vs %v", hb.BinWidth(), hn.BinWidth())
	}
	vn, ok := rebin(hn, width)
	if !ok {
		return nil, nil, 0, fmt.Sprintf("incompatible bin widths %v vs %v", hb.BinWidth(), hn.BinWidth())
	}
	n := len(vb)
	if len(vn) < n {
		n = len(vn)
	}
	// Drop the endpoint bins: collection start and end fall somewhere
	// inside them, so their values undercount (§5).
	if n < 4 {
		return nil, nil, 0, fmt.Sprintf("too few common bins (%d) for a paired test", n)
	}
	sec := width.Seconds()
	rb = make([]float64, 0, n-2)
	rn = make([]float64, 0, n-2)
	for i := 1; i < n-1; i++ {
		rb = append(rb, vb[i]/sec)
		rn = append(rn, vn[i]/sec)
	}
	return rb, rn, width, ""
}

// rebin returns the histogram's filled values regrouped at the coarser
// target width (summing runs of ratio bins). ok is false when the widths
// are not integer multiples — histograms that started at different
// granularities cannot be aligned.
func rebin(h *metric.Histogram, target sim.Duration) ([]float64, bool) {
	w := h.BinWidth()
	if w <= 0 || target%w != 0 {
		return nil, false
	}
	ratio := int(target / w)
	vals := h.Values()
	if ratio == 1 {
		return vals, true
	}
	out := make([]float64, 0, (len(vals)+ratio-1)/ratio)
	for i := 0; i < len(vals); i += ratio {
		s := 0.0
		for j := i; j < i+ratio && j < len(vals); j++ {
			s += vals[j]
		}
		out = append(out, s)
	}
	return out, true
}

// rankDeltas orders: significant first by |RelChange| descending (NaN —
// rose from zero — ranks above every finite change), then unchanged,
// then skipped; pair names break every tie.
func rankDeltas(ds []SeriesDelta) {
	class := func(v Verdict) int {
		switch v {
		case VerdictRegression, VerdictImprovement:
			return 0
		case VerdictUnchanged:
			return 1
		default:
			return 2
		}
	}
	mag := func(d SeriesDelta) float64 {
		if math.IsNaN(d.RelChange) {
			return math.Inf(1)
		}
		return math.Abs(d.RelChange)
	}
	sort.SliceStable(ds, func(i, j int) bool {
		ci, cj := class(ds[i].Verdict), class(ds[j].Verdict)
		if ci != cj {
			return ci < cj
		}
		if ci == 0 {
			mi, mj := mag(ds[i]), mag(ds[j])
			if mi != mj {
				return mi > mj
			}
		}
		return ds[i].Pair.Key() < ds[j].Pair.Key()
	})
}

// describe renders one delta as a report line.
func (d SeriesDelta) describe() string {
	name := fmt.Sprintf("%s @ %s", d.Pair.Metric, d.Pair.Focus)
	if d.Verdict == VerdictSkipped {
		return fmt.Sprintf("%-11s %s: %s", d.Verdict, name, d.Skipped)
	}
	rel := "n/a"
	if !math.IsNaN(d.RelChange) {
		rel = fmt.Sprintf("%+.1f%%", d.RelChange*100)
	}
	return fmt.Sprintf("%-11s %s: %.6g/s -> %.6g/s (%s, CI %s, n=%d @ %v)",
		d.Verdict, name, d.BaseRate, d.NewRate, rel, d.CI, d.Bins, d.BinWidth)
}

// Render produces the ranked, byte-deterministic diff report.
func (r *DiffReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perfdb diff: %s -> %s\n", runTitle(r.Base), runTitle(r.New))
	fmt.Fprintf(&b, "  base: %s\n", r.Base.Describe())
	fmt.Fprintf(&b, "  new:  %s\n", r.New.Describe())
	if r.Base.Verdict != "" || r.New.Verdict != "" {
		fmt.Fprintf(&b, "  consultant: base %s\n", orDash(r.Base.Verdict))
		fmt.Fprintf(&b, "              new  %s\n", orDash(r.New.Verdict))
	}
	if len(r.Deltas) == 0 {
		b.WriteString("no comparable metric-focus pairs\n")
	}
	for _, d := range r.Deltas {
		b.WriteString("  " + d.describe() + "\n")
	}
	for _, p := range r.OnlyBase {
		fmt.Fprintf(&b, "  only in base: %s @ %s\n", p.Metric, p.Focus)
	}
	for _, p := range r.OnlyNew {
		fmt.Fprintf(&b, "  only in new:  %s @ %s\n", p.Metric, p.Focus)
	}
	nReg := len(r.Regressions())
	nSig := 0
	for _, d := range r.Deltas {
		if d.Verdict == VerdictRegression || d.Verdict == VerdictImprovement {
			nSig++
		}
	}
	fmt.Fprintf(&b, "%d pairs compared, %d significant (%d regressions)\n",
		len(r.Deltas), nSig, nReg)
	return b.String()
}

func runTitle(m RunMeta) string {
	if m.Label != "" {
		return fmt.Sprintf("%s (%s)", m.ID, m.Label)
	}
	return m.ID
}
