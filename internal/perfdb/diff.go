package perfdb

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pperf/internal/faults"
	"pperf/internal/metric"
	"pperf/internal/sim"
	"pperf/internal/stats"
)

// Cross-run regression diagnosis: align the metric-focus pairs two stored
// runs share, compare their histogram series bin-by-bin with the paper's
// §5.2.1.3 paired-difference test (is zero inside the 95% confidence
// interval of the mean per-bin difference?), and rank the significant
// changes. The metrics this tool collects measure costs — wait fractions,
// transferred bytes, operation counts — so a significant rate increase is
// reported as a regression and a significant decrease as an improvement.
//
// Compare generalizes the test to a virtual-time window: restricted to
// [from,to), only the bins overlapping the window enter the paired test,
// so a change confined to one phase of the run (after a fault fired, say)
// is not diluted by the unaffected phase.

// Verdict classifies one aligned pair's change.
type Verdict string

const (
	// VerdictRegression: the rate rose and the CI excludes zero.
	VerdictRegression Verdict = "REGRESSION"
	// VerdictImprovement: the rate fell and the CI excludes zero.
	VerdictImprovement Verdict = "improvement"
	// VerdictUnchanged: the CI contains zero.
	VerdictUnchanged Verdict = "unchanged"
	// VerdictSkipped: the pair could not be compared (reason in Skipped).
	VerdictSkipped Verdict = "skipped"
	// VerdictNotComparable: a requested window excludes the pair's data,
	// so the comparison is undefined there (reason in Skipped). Reported
	// rather than dropped so a windowed report accounts for every pair.
	VerdictNotComparable Verdict = "NOT-COMPARABLE"
)

// Window restricts a comparison to the virtual-time interval [From, To).
// To == 0 leaves the window open-ended; the zero Window disables
// windowing entirely (the whole run is compared).
type Window struct {
	From, To sim.Time
}

// Enabled reports whether the window restricts anything.
func (w Window) Enabled() bool { return w.From > 0 || w.To > 0 }

// String renders the half-open interval, with an open end as "end".
func (w Window) String() string {
	if w.To > 0 {
		return fmt.Sprintf("[%v, %v)", w.From, w.To)
	}
	return fmt.Sprintf("[%v, end)", w.From)
}

// overlaps reports whether the bin interval [lo, hi) intersects the
// window.
func (w Window) overlaps(lo, hi sim.Time) bool {
	if w.To > 0 && lo >= w.To {
		return false
	}
	return hi > w.From
}

// CompareOptions parameterize a cross-run comparison. The zero value
// reproduces the classic whole-run diff exactly.
type CompareOptions struct {
	// Window restricts the paired test to bins overlapping [From, To) in
	// virtual time. The zero window compares the whole run.
	Window Window
	// SinceFault anchors the window's start at the new run's first fired
	// fault (read from its recorded fault log). Comparing only the
	// post-fault phase keeps a fault-local regression from being diluted
	// below significance by the healthy prefix. Mutually exclusive with
	// an explicit Window.From; combines with Window.To. It is an error
	// when the new run has no fired faults on record.
	SinceFault bool
	// Alpha is the two-sided significance level of the paired test:
	// 0.10, 0.05 or 0.01 (0 means 0.05, the paper's level).
	Alpha float64
	// MinEffect suppresses significant verdicts whose |relative change|
	// falls below it: statistically real but operationally irrelevant
	// drifts report as unchanged. 0 disables the filter.
	MinEffect float64
}

// SeriesDelta is the comparison of one metric-focus pair across two runs.
type SeriesDelta struct {
	Pair    Pair
	Verdict Verdict
	// Skipped holds the reason when Verdict is VerdictSkipped or
	// VerdictNotComparable.
	Skipped string

	// BaseRate and NewRate are the mean interior per-bin rates (units/s)
	// at the common bin width; endpoint bins are excluded, as the paper
	// does, because collection start/end fall somewhere inside them.
	BaseRate, NewRate float64
	// MeanDiff is the mean per-bin rate difference, new minus base.
	MeanDiff float64
	// CI is the confidence interval of MeanDiff at the comparison's
	// significance level (95% by default).
	CI stats.Interval
	// RelChange is MeanDiff relative to BaseRate (NaN when BaseRate is 0
	// and the rates differ; ranked last among equals).
	RelChange float64

	// Bins is the number of interior bins compared; BinWidth the common
	// granularity both series were rebinned to.
	Bins     int
	BinWidth sim.Duration
}

// DiffReport is the ranked outcome of comparing two stored runs.
type DiffReport struct {
	Base, New RunMeta

	// Window is the effective virtual-time restriction (zero when the
	// whole run was compared); SinceFault records that its start was
	// anchored at the new run's first fired fault.
	Window     Window
	SinceFault bool
	// Alpha is the significance level the verdicts used; MinEffect the
	// relative-change floor (0 when unset).
	Alpha     float64
	MinEffect float64

	// Deltas holds every pair present in both runs: significant changes
	// first (largest |RelChange| first), then unchanged, then skipped;
	// ties broken by pair name so the report is byte-deterministic.
	Deltas []SeriesDelta

	// OnlyBase and OnlyNew list pairs enabled in just one of the runs.
	OnlyBase, OnlyNew []Pair
}

// Regressions returns the deltas with a regression verdict, in rank order.
func (r *DiffReport) Regressions() []SeriesDelta {
	var out []SeriesDelta
	for _, d := range r.Deltas {
		if d.Verdict == VerdictRegression {
			out = append(out, d)
		}
	}
	return out
}

// Diff compares two materialized runs, base against new, over the whole
// run at the default significance level.
//
// Deprecated: Diff is the pre-options entry point, kept for
// compatibility; new callers should use Compare, which adds windowing,
// fault anchoring, and threshold control. Diff(base, neu) is exactly
// Compare(base, neu, CompareOptions{}).
func Diff(base, neu *RunView) *DiffReport {
	rep, err := Compare(base, neu, CompareOptions{})
	if err != nil {
		// Default options have no failing path; a failure here is a
		// programming error in Compare itself.
		panic(fmt.Sprintf("perfdb: Diff: %v", err))
	}
	return rep
}

// Compare runs the cross-run comparison of base against new under the
// given options. The zero CompareOptions reproduce Diff byte for byte.
func Compare(base, neu *RunView, opts CompareOptions) (*DiffReport, error) {
	if _, err := stats.TCritical(1, opts.Alpha); err != nil {
		return nil, fmt.Errorf("perfdb: %v", err)
	}
	if opts.MinEffect < 0 {
		return nil, fmt.Errorf("perfdb: negative min-effect %g", opts.MinEffect)
	}
	win := opts.Window
	if opts.SinceFault {
		if win.From > 0 {
			return nil, fmt.Errorf("perfdb: SinceFault and an explicit window start are mutually exclusive (drop -from or -since-fault)")
		}
		at, ok := faults.FirstFireTime(neu.FaultLog())
		if !ok {
			return nil, fmt.Errorf("perfdb: run %s has no fired faults to anchor the window (recorded without -faults, or before fault logs were stored? use -from for an explicit window)", runTitle(neu.Meta))
		}
		win.From = at
	}
	if win.To > 0 && win.From >= win.To {
		return nil, fmt.Errorf("perfdb: empty window %v: the start must precede the end", win)
	}
	rep := &DiffReport{
		Base: base.Meta, New: neu.Meta,
		Window: win, SinceFault: opts.SinceFault,
		Alpha: opts.Alpha, MinEffect: opts.MinEffect,
	}
	if rep.Alpha == 0 {
		rep.Alpha = 0.05
	}
	basePairs := base.Pairs()
	newKeys := map[string]bool{}
	for _, p := range neu.Pairs() {
		newKeys[p.Key()] = true
	}
	baseKeys := map[string]bool{}
	for _, p := range basePairs {
		baseKeys[p.Key()] = true
	}
	for _, p := range neu.Pairs() {
		if !baseKeys[p.Key()] {
			rep.OnlyNew = append(rep.OnlyNew, p)
		}
	}
	for _, p := range basePairs {
		if !newKeys[p.Key()] {
			rep.OnlyBase = append(rep.OnlyBase, p)
			continue
		}
		rep.Deltas = append(rep.Deltas, comparePair(p,
			base.SeriesFor(p).Histogram(), neu.SeriesFor(p).Histogram(), win, rep.Alpha, opts.MinEffect))
	}
	rankDeltas(rep.Deltas)
	return rep, nil
}

// comparePair runs the paired-difference test over one pair's two
// histograms, restricted to the window's bins.
func comparePair(p Pair, hb, hn *metric.Histogram, win Window, alpha, minEffect float64) SeriesDelta {
	d := SeriesDelta{Pair: p}
	rb, rn, width, reason, excluded := alignRates(hb, hn, win)
	if reason != "" {
		if excluded {
			d.Verdict = VerdictNotComparable
		} else {
			d.Verdict = VerdictSkipped
		}
		d.Skipped = reason
		return d
	}
	d.BinWidth = width
	d.Bins = len(rb)
	d.BaseRate = stats.Mean(rb)
	d.NewRate = stats.Mean(rn)
	// PairedDiffAlpha computes a-b, so pass the new run first: MeanDiff >
	// 0 means the rate rose.
	pr, err := stats.PairedDiffAlpha(rn, rb, alpha)
	if err != nil {
		d.Verdict = VerdictSkipped
		d.Skipped = err.Error()
		return d
	}
	d.MeanDiff = pr.MeanDiff
	d.CI = pr.CI
	switch {
	case d.BaseRate != 0:
		d.RelChange = d.MeanDiff / d.BaseRate
	case d.MeanDiff != 0:
		d.RelChange = math.NaN() // rose from zero: infinite relative change
	}
	significant := pr.Significant
	if significant && minEffect > 0 && !math.IsNaN(d.RelChange) && math.Abs(d.RelChange) < minEffect {
		significant = false
	}
	switch {
	case !significant:
		d.Verdict = VerdictUnchanged
	case d.MeanDiff > 0:
		d.Verdict = VerdictRegression
	default:
		d.Verdict = VerdictImprovement
	}
	return d
}

// alignRates rebins both histograms to the coarser common bin width,
// truncates to the shorter filled prefix, drops the endpoint bins, keeps
// the interior bins overlapping the window, and returns their per-bin
// rates. A non-empty reason means the pair cannot be compared; excluded
// distinguishes "the window left too little data" (NOT-COMPARABLE) from
// shape problems the runs have regardless of any window (skipped).
func alignRates(hb, hn *metric.Histogram, win Window) (rb, rn []float64, width sim.Duration, reason string, excluded bool) {
	if hb.NumFilled() == 0 || hn.NumFilled() == 0 {
		return nil, nil, 0, "no data in one or both runs", false
	}
	width = hb.BinWidth()
	if hn.BinWidth() > width {
		width = hn.BinWidth()
	}
	vb, ok := rebin(hb, width)
	if !ok {
		return nil, nil, 0, fmt.Sprintf("incompatible bin widths %v vs %v", hb.BinWidth(), hn.BinWidth()), false
	}
	vn, ok := rebin(hn, width)
	if !ok {
		return nil, nil, 0, fmt.Sprintf("incompatible bin widths %v vs %v", hb.BinWidth(), hn.BinWidth()), false
	}
	n := len(vb)
	if len(vn) < n {
		n = len(vn)
	}
	// Drop the endpoint bins: collection start and end fall somewhere
	// inside them, so their values undercount (§5).
	if n < 4 {
		return nil, nil, 0, fmt.Sprintf("too few common bins (%d) for a paired test", n), false
	}
	sec := width.Seconds()
	rb = make([]float64, 0, n-2)
	rn = make([]float64, 0, n-2)
	kept := 0
	for i := 1; i < n-1; i++ {
		lo := sim.Time(sim.Duration(i) * width)
		hi := sim.Time(sim.Duration(i+1) * width)
		if win.Enabled() && !win.overlaps(lo, hi) {
			continue
		}
		kept++
		rb = append(rb, vb[i]/sec)
		rn = append(rn, vn[i]/sec)
	}
	if win.Enabled() && kept < 2 {
		span := sim.Time(sim.Duration(n) * width)
		switch kept {
		case 0:
			return nil, nil, 0, fmt.Sprintf("window %v excludes every interior bin (runs share %d bins @ %v, ending at %v)", win, n, width, span), true
		default:
			return nil, nil, 0, fmt.Sprintf("window %v leaves 1 interior bin; a paired test needs at least 2", win), true
		}
	}
	return rb, rn, width, "", false
}

// rebin returns the histogram's filled values regrouped at the coarser
// target width (summing runs of ratio bins). ok is false when the widths
// are not integer multiples — histograms that started at different
// granularities cannot be aligned.
func rebin(h *metric.Histogram, target sim.Duration) ([]float64, bool) {
	w := h.BinWidth()
	if w <= 0 || target%w != 0 {
		return nil, false
	}
	ratio := int(target / w)
	vals := h.Values()
	if ratio == 1 {
		return vals, true
	}
	out := make([]float64, 0, (len(vals)+ratio-1)/ratio)
	for i := 0; i < len(vals); i += ratio {
		s := 0.0
		for j := i; j < i+ratio && j < len(vals); j++ {
			s += vals[j]
		}
		out = append(out, s)
	}
	return out, true
}

// rankDeltas orders: significant first by |RelChange| descending (NaN —
// rose from zero — ranks above every finite change), then unchanged,
// then skipped; pair names break every tie.
func rankDeltas(ds []SeriesDelta) {
	class := func(v Verdict) int {
		switch v {
		case VerdictRegression, VerdictImprovement:
			return 0
		case VerdictUnchanged:
			return 1
		default:
			return 2
		}
	}
	mag := func(d SeriesDelta) float64 {
		if math.IsNaN(d.RelChange) {
			return math.Inf(1)
		}
		return math.Abs(d.RelChange)
	}
	sort.SliceStable(ds, func(i, j int) bool {
		ci, cj := class(ds[i].Verdict), class(ds[j].Verdict)
		if ci != cj {
			return ci < cj
		}
		if ci == 0 {
			mi, mj := mag(ds[i]), mag(ds[j])
			if mi != mj {
				return mi > mj
			}
		}
		return ds[i].Pair.Key() < ds[j].Pair.Key()
	})
}

// describe renders one delta as a report line.
func (d SeriesDelta) describe() string {
	name := fmt.Sprintf("%s @ %s", d.Pair.Metric, d.Pair.Focus)
	if d.Verdict == VerdictSkipped || d.Verdict == VerdictNotComparable {
		return fmt.Sprintf("%-11s %s: %s", d.Verdict, name, d.Skipped)
	}
	rel := "n/a"
	if !math.IsNaN(d.RelChange) {
		rel = fmt.Sprintf("%+.1f%%", d.RelChange*100)
	}
	return fmt.Sprintf("%-11s %s: %.6g/s -> %.6g/s (%s, CI %s, n=%d @ %v)",
		d.Verdict, name, d.BaseRate, d.NewRate, rel, d.CI, d.Bins, d.BinWidth)
}

// Render produces the ranked, byte-deterministic diff report. An
// unwindowed default-options report renders exactly as the classic Diff
// output did; window and threshold lines appear only when set.
func (r *DiffReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perfdb diff: %s -> %s\n", runTitle(r.Base), runTitle(r.New))
	fmt.Fprintf(&b, "  base: %s\n", r.Base.Describe())
	fmt.Fprintf(&b, "  new:  %s\n", r.New.Describe())
	if r.Window.Enabled() {
		anchor := ""
		if r.SinceFault {
			anchor = " (anchored at the new run's first fired fault)"
		}
		fmt.Fprintf(&b, "  window: %v%s\n", r.Window, anchor)
	}
	if r.Alpha != 0 && r.Alpha != 0.05 {
		fmt.Fprintf(&b, "  alpha: %g\n", r.Alpha)
	}
	if r.MinEffect > 0 {
		fmt.Fprintf(&b, "  min-effect: %g\n", r.MinEffect)
	}
	if r.Base.Verdict != "" || r.New.Verdict != "" {
		fmt.Fprintf(&b, "  consultant: base %s\n", orDash(r.Base.Verdict))
		fmt.Fprintf(&b, "              new  %s\n", orDash(r.New.Verdict))
	}
	if len(r.Deltas) == 0 {
		b.WriteString("no comparable metric-focus pairs\n")
	}
	for _, d := range r.Deltas {
		b.WriteString("  " + d.describe() + "\n")
	}
	for _, p := range r.OnlyBase {
		fmt.Fprintf(&b, "  only in base: %s @ %s\n", p.Metric, p.Focus)
	}
	for _, p := range r.OnlyNew {
		fmt.Fprintf(&b, "  only in new:  %s @ %s\n", p.Metric, p.Focus)
	}
	nReg := len(r.Regressions())
	nSig := 0
	for _, d := range r.Deltas {
		if d.Verdict == VerdictRegression || d.Verdict == VerdictImprovement {
			nSig++
		}
	}
	fmt.Fprintf(&b, "%d pairs compared, %d significant (%d regressions)\n",
		len(r.Deltas), nSig, nReg)
	return b.String()
}

func runTitle(m RunMeta) string {
	if m.Label != "" {
		return fmt.Sprintf("%s (%s)", m.ID, m.Label)
	}
	return m.ID
}
