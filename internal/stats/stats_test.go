package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("stddev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate cases should be 0")
	}
}

func TestTCritical(t *testing.T) {
	if v := TCritical95(1); v != 12.706 {
		t.Errorf("t(1) = %v", v)
	}
	if v := TCritical95(30); v != 2.042 {
		t.Errorf("t(30) = %v", v)
	}
	if v := TCritical95(1000); v != 1.96 {
		t.Errorf("t(1000) = %v", v)
	}
	if !math.IsInf(TCritical95(0), 1) {
		t.Error("t(0) should be +inf")
	}
}

func TestMeanCI95(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	ci := MeanCI95(xs)
	if ci.Lo != 10 || ci.Hi != 10 {
		t.Errorf("zero-variance CI = %v", ci)
	}
	ys := []float64{9, 10, 11, 10, 9, 11, 10, 10}
	ci2 := MeanCI95(ys)
	if !ci2.Contains(10) || ci2.Contains(12) {
		t.Errorf("CI = %v", ci2)
	}
}

func TestPairedDiffNotSignificant(t *testing.T) {
	a := []float64{100, 101, 99, 100.5, 99.5}
	b := []float64{100.2, 100.4, 99.4, 100.1, 99.9} // noise around a
	res, err := PairedDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Errorf("noise should not be significant: %+v", res)
	}
}

func TestPairedDiffSignificant(t *testing.T) {
	a := []float64{100, 101, 99, 100, 100}
	b := []float64{90, 91, 89.5, 90.2, 90.1} // consistent 10-unit offset
	res, err := PairedDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Errorf("consistent offset should be significant: %+v", res)
	}
	if math.Abs(res.RelDiff-0.1) > 0.01 {
		t.Errorf("relative diff = %v, want ≈0.1", res.RelDiff)
	}
}

func TestPairedDiffErrors(t *testing.T) {
	if _, err := PairedDiff([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PairedDiff(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

// Property: the 95% CI of the mean always contains the sample mean, and
// widens with variance.
func TestPropertyCIContainsMean(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		ci := MeanCI95(xs)
		return ci.Contains(Mean(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
