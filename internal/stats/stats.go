// Package stats provides the small statistical toolkit §5.2.1.3 uses to
// compare the tool's RMA measurements against the Presta benchmark's own
// numbers: means, standard deviations, and confidence intervals on the mean
// of paired differences ("we determined whether differences in the
// measurements were statistically significant by inspecting the confidence
// interval of the mean of the differences of the two sets of measurements").
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tCrit95 holds two-sided 95% Student-t critical values for df 1..30;
// larger dfs use the normal approximation.
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% t critical value for the given
// degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.96
}

// Interval is a confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// String formats the interval.
func (iv Interval) String() string { return fmt.Sprintf("[%.6g, %.6g]", iv.Lo, iv.Hi) }

// MeanCI95 returns the 95% confidence interval of the mean.
func MeanCI95(xs []float64) Interval {
	n := len(xs)
	m := Mean(xs)
	if n < 2 {
		return Interval{m, m}
	}
	half := TCritical95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
	return Interval{m - half, m + half}
}

// PairedResult is the outcome of a paired-difference comparison.
type PairedResult struct {
	MeanDiff float64
	CI       Interval
	// Significant is true when the CI of the mean difference excludes
	// zero — the §5.2.1.3 criterion.
	Significant bool
	// RelDiff is the mean difference relative to the mean of the first
	// sample (the paper reports ~0.6% relative differences).
	RelDiff float64
	N       int
}

// PairedDiff compares paired measurements a[i] vs b[i].
func PairedDiff(a, b []float64) (*PairedResult, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, fmt.Errorf("stats: empty samples")
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	ci := MeanCI95(diffs)
	res := &PairedResult{
		MeanDiff:    Mean(diffs),
		CI:          ci,
		Significant: !ci.Contains(0),
		N:           len(a),
	}
	if m := Mean(a); m != 0 {
		res.RelDiff = res.MeanDiff / m
	}
	return res, nil
}
