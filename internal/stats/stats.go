// Package stats provides the small statistical toolkit §5.2.1.3 uses to
// compare the tool's RMA measurements against the Presta benchmark's own
// numbers: means, standard deviations, and confidence intervals on the mean
// of paired differences ("we determined whether differences in the
// measurements were statistically significant by inspecting the confidence
// interval of the mean of the differences of the two sets of measurements").
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tCrit95 holds two-sided 95% Student-t critical values for df 1..30;
// larger dfs use the normal approximation.
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit90 and tCrit99 are the two-sided 90% and 99% tables over the same
// df range, for callers that loosen or tighten the significance level.
var tCrit90 = []float64{
	6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
	1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
}

var tCrit99 = []float64{
	63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
	3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
	2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
}

// alphaTables maps a supported two-sided significance level to its
// critical-value table and normal-approximation tail value.
var alphaTables = map[float64]struct {
	table []float64
	z     float64
}{
	0.10: {tCrit90, 1.645},
	0.05: {tCrit95, 1.96},
	0.01: {tCrit99, 2.576},
}

// SupportedAlphas lists the significance levels TCritical accepts, in
// loosest-to-tightest order.
var SupportedAlphas = []float64{0.10, 0.05, 0.01}

// TCritical returns the two-sided Student-t critical value at the given
// significance level (alpha 0.10, 0.05 or 0.01; 0 means 0.05). An
// unsupported alpha is an error — the tables are fixed, not interpolated.
func TCritical(df int, alpha float64) (float64, error) {
	if alpha == 0 {
		alpha = 0.05
	}
	at, ok := alphaTables[alpha]
	if !ok {
		return 0, fmt.Errorf("stats: unsupported alpha %g (supported: 0.10, 0.05, 0.01)", alpha)
	}
	if df <= 0 {
		return math.Inf(1), nil
	}
	if df <= len(at.table) {
		return at.table[df-1], nil
	}
	return at.z, nil
}

// TCritical95 returns the two-sided 95% t critical value for the given
// degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.96
}

// Interval is a confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// String formats the interval.
func (iv Interval) String() string { return fmt.Sprintf("[%.6g, %.6g]", iv.Lo, iv.Hi) }

// MeanCI95 returns the 95% confidence interval of the mean.
func MeanCI95(xs []float64) Interval {
	n := len(xs)
	m := Mean(xs)
	if n < 2 {
		return Interval{m, m}
	}
	half := TCritical95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
	return Interval{m - half, m + half}
}

// MeanCI returns the confidence interval of the mean at the given
// significance level (see TCritical for the supported alphas).
func MeanCI(xs []float64, alpha float64) (Interval, error) {
	n := len(xs)
	m := Mean(xs)
	tc, err := TCritical(n-1, alpha)
	if err != nil {
		return Interval{}, err
	}
	if n < 2 {
		return Interval{m, m}, nil
	}
	half := tc * StdDev(xs) / math.Sqrt(float64(n))
	return Interval{m - half, m + half}, nil
}

// PairedResult is the outcome of a paired-difference comparison.
type PairedResult struct {
	MeanDiff float64
	CI       Interval
	// Significant is true when the CI of the mean difference excludes
	// zero — the §5.2.1.3 criterion.
	Significant bool
	// RelDiff is the mean difference relative to the mean of the first
	// sample (the paper reports ~0.6% relative differences).
	RelDiff float64
	N       int
}

// PairedDiff compares paired measurements a[i] vs b[i] at the 95% level.
func PairedDiff(a, b []float64) (*PairedResult, error) {
	return PairedDiffAlpha(a, b, 0.05)
}

// PairedDiffAlpha is PairedDiff at an explicit significance level (see
// TCritical for the supported alphas; 0 means 0.05).
func PairedDiffAlpha(a, b []float64, alpha float64) (*PairedResult, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return nil, fmt.Errorf("stats: empty samples")
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	ci, err := MeanCI(diffs, alpha)
	if err != nil {
		return nil, err
	}
	res := &PairedResult{
		MeanDiff:    Mean(diffs),
		CI:          ci,
		Significant: !ci.Contains(0),
		N:           len(a),
	}
	if m := Mean(a); m != 0 {
		res.RelDiff = res.MeanDiff / m
	}
	return res, nil
}
