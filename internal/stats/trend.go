package stats

import (
	"fmt"
	"math"
)

// TrendFit is an ordinary-least-squares line fit of y against its index
// (x = 0, 1, …, n-1), with a confidence interval on the slope. It answers
// the cross-run question "is this series drifting over successive runs?"
// with the same CI-excludes-zero criterion the paired-difference test
// uses for pairwise comparison.
type TrendFit struct {
	// Slope is the fitted per-index change; Intercept the value at x=0.
	Slope, Intercept float64
	// CI is the confidence interval of Slope at the requested level.
	CI Interval
	// Significant is true when the CI excludes zero.
	Significant bool
	// SE is the standard error of the slope; N the number of points.
	SE float64
	N  int
}

// LinearTrend fits y over x = 0..n-1 and tests the slope at the given
// significance level (alpha 0.10, 0.05 or 0.01; 0 means 0.05). At least
// three points are required — with two, the fit is exact and the slope
// has no error estimate.
func LinearTrend(ys []float64, alpha float64) (*TrendFit, error) {
	n := len(ys)
	if n < 3 {
		return nil, fmt.Errorf("stats: trend needs at least 3 points, have %d", n)
	}
	tc, err := TCritical(n-2, alpha)
	if err != nil {
		return nil, err
	}
	xm := float64(n-1) / 2
	ym := Mean(ys)
	sxx, sxy := 0.0, 0.0
	for i, y := range ys {
		dx := float64(i) - xm
		sxx += dx * dx
		sxy += dx * (y - ym)
	}
	fit := &TrendFit{Slope: sxy / sxx, N: n}
	fit.Intercept = ym - fit.Slope*xm
	sse := 0.0
	for i, y := range ys {
		r := y - (fit.Intercept + fit.Slope*float64(i))
		sse += r * r
	}
	// Guard tiny negative residual sums from float cancellation.
	if sse < 0 {
		sse = 0
	}
	fit.SE = math.Sqrt(sse / float64(n-2) / sxx)
	half := tc * fit.SE
	fit.CI = Interval{fit.Slope - half, fit.Slope + half}
	fit.Significant = !fit.CI.Contains(0)
	return fit, nil
}
