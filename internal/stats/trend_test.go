package stats

import (
	"math"
	"testing"
)

func TestLinearTrendExactLine(t *testing.T) {
	fit, err := LinearTrend([]float64{1, 2, 3, 4, 5}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-1) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 1 intercept 1", fit)
	}
	if !fit.Significant {
		t.Errorf("noise-free line not significant: %+v", fit)
	}
}

func TestLinearTrendFlatIsStable(t *testing.T) {
	fit, err := LinearTrend([]float64{2, 2, 2, 2}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Significant {
		t.Errorf("flat series: %+v", fit)
	}
}

func TestLinearTrendLevelShiftAlphaSensitivity(t *testing.T) {
	// A 2-of-5 level shift has t = 3.0 regardless of magnitude: below the
	// 95% critical value for df=3 (3.182), above the 90% one (2.353).
	ys := []float64{1, 1, 1, 2, 2}
	at95, err := LinearTrend(ys, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	at90, err := LinearTrend(ys, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if at95.Significant {
		t.Errorf("df=3 level shift significant at 95%%: %+v", at95)
	}
	if !at90.Significant {
		t.Errorf("df=3 level shift not significant at 90%%: %+v", at90)
	}
}

func TestLinearTrendErrors(t *testing.T) {
	if _, err := LinearTrend([]float64{1, 2}, 0.05); err == nil {
		t.Error("2-point trend accepted")
	}
	if _, err := LinearTrend([]float64{1, 2, 3}, 0.042); err == nil {
		t.Error("unsupported alpha accepted")
	}
}

func TestTCriticalAlphas(t *testing.T) {
	for _, tc := range []struct {
		df    int
		alpha float64
		want  float64
	}{
		{3, 0.05, 3.182}, {3, 0.10, 2.353}, {3, 0.01, 5.841},
		{100, 0.05, 1.96}, {100, 0.10, 1.645}, {100, 0.01, 2.576},
		{3, 0, 3.182}, // 0 defaults to 0.05
	} {
		got, err := TCritical(tc.df, tc.alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("TCritical(%d, %g) = %g, want %g", tc.df, tc.alpha, got, tc.want)
		}
	}
	if _, err := TCritical(3, 0.2); err == nil {
		t.Error("alpha 0.2 accepted")
	}
	if iv, err := MeanCI([]float64{1, 2, 3}, 0.05); err != nil || iv != MeanCI95([]float64{1, 2, 3}) {
		t.Errorf("MeanCI(0.05) = %v, %v; want the MeanCI95 interval", iv, err)
	}
}
