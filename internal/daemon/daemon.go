package daemon

import (
	"fmt"
	"sort"

	"pperf/internal/mdl"
	"pperf/internal/metric"
	"pperf/internal/mpi"
	"pperf/internal/probe"
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// Daemon is one node's tool daemon. Create one per cluster node with New,
// wire the set into the world with Attach, then start sampling with Start.
type Daemon struct {
	name     string
	node     int
	nodeName string
	eng      *sim.Engine
	lib      *mdl.Library
	tr       Transport
	cfg      Config

	// tracer, when non-nil, makes the daemon the streaming stage of the
	// tracing subsystem: each tick it drains its node's span recorders into
	// shards and ships them through the report transport (see outbox.go).
	tracer *trace.Tracer

	// incarnation numbers successive daemons on the same node: the first
	// is 1, each supervisor respawn increments it. Transports stamp it on
	// frames so listeners can fence out stragglers from dead incarnations.
	incarnation int

	ranks []*rankCtx
	// enabled remembers every metric-focus enable request so processes
	// adopted later (spawn) are instrumented too.
	enabled []enableReq

	stopped bool

	// Resilience state (see outbox.go).
	crashed     bool
	hungUntil   sim.Time
	attachUntil sim.Time
	outbox      []outMsg
	dropped     int64

	// Bulk trace-streaming state (see outbox.go): shards waiting for the
	// bulk channel to recover, plus the span-level loss accounting for
	// queue eviction and end-of-run stranding.
	bulkQ       []trace.Shard
	lostSpans   map[string]int64
	undelivered map[string]int64
}

type enableReq struct {
	metricName string
	focus      resource.Focus
}

// rankCtx is the daemon's per-process state; it implements mdl.Target.
type rankCtx struct {
	d       *Daemon
	r       *mpi.Rank
	modules map[string][]string // module → discovered functions
	// edges already reported to the front end.
	sentEdges map[[2]string]bool
	insts     []*liveInst
	exited    bool
}

type liveInst struct {
	req  enableReq
	mi   *metric.Instance
	mdli *mdl.Instance
}

// mdl.Target implementation. The clock accessors use the engine's global
// time so samplers observing blocked or mid-computation processes read
// up-to-date values.
func (rc *rankCtx) Probes() *probe.Process { return rc.r.Probes() }
func (rc *rankCtx) FunctionsOfModule(m string) []string {
	return append([]string(nil), rc.modules[m]...)
}
func (rc *rankCtx) WallNow() sim.Time       { return rc.d.eng.Now() }
func (rc *rankCtx) CPUNow() sim.Duration    { return rc.r.CPUTimeAt(rc.d.eng.Now()) }
func (rc *rankCtx) SystemNow() sim.Duration { return rc.r.SystemTimeAt(rc.d.eng.Now()) }

// NameFor returns the daemon identity for a node — the name stamped on
// reports and used by transports and the liveness monitor.
func NameFor(nodeName string) string { return "paradynd@" + nodeName }

// New creates the daemon for one node (incarnation 1).
func New(eng *sim.Engine, node int, nodeName string, lib *mdl.Library, tr Transport, cfg Config) *Daemon {
	return &Daemon{
		name:        NameFor(nodeName),
		node:        node,
		nodeName:    nodeName,
		eng:         eng,
		lib:         lib,
		tr:          tr,
		cfg:         cfg,
		incarnation: 1,
	}
}

// SetIncarnation overrides the daemon's incarnation number — used when the
// supervisor respawns a node's daemon so the replacement is distinguishable
// from its dead predecessor.
func (d *Daemon) SetIncarnation(n int) { d.incarnation = n }

// Incarnation returns the daemon's incarnation number (1 for the original).
func (d *Daemon) Incarnation() int { return d.incarnation }

// EnableTracing arms trace-shard streaming: the daemon drains tr's span
// recorders for its node on every tick and ships them to the front end.
// When the transport has a dedicated bulk channel, the daemon also
// registers the tracer's fill hook so recorders reaching the watermark are
// drained and shipped immediately instead of waiting for the next tick.
func (d *Daemon) EnableTracing(tr *trace.Tracer) {
	d.tracer = tr
	if _, ok := d.tr.(BulkSink); ok {
		tr.SetFillHook(d.nodeName, d.shipRecorder)
	}
}

// Name returns the daemon's identity.
func (d *Daemon) Name() string { return d.name }

// NumProcesses returns how many application processes the daemon owns.
func (d *Daemon) NumProcesses() int { return len(d.ranks) }

// Registry routes world hooks to the current daemon of each node. The
// supervisor swaps in respawned incarnations with Replace; the hook
// closures read through the map, so discovery events always reach the
// live incarnation.
type Registry struct {
	byNode map[int]*Daemon
}

// Replace installs d as its node's current daemon (keyed by d's node
// index) and returns the daemon it displaced (nil if none).
func (reg *Registry) Replace(d *Daemon) *Daemon {
	old := reg.byNode[d.node]
	reg.byNode[d.node] = d
	return old
}

// Current returns the node's current daemon, or nil.
func (reg *Registry) Current(node int) *Daemon { return reg.byNode[node] }

// AttachAll wires a set of daemons (one per node) into the world's
// resource-discovery hooks, including spawn support with the configured
// method. Call once before launching programs. The returned registry lets
// the supervisor re-route the hooks to respawned incarnations.
func AttachAll(w *mpi.World, daemons []*Daemon) *Registry {
	byNode := map[int]*Daemon{}
	for _, d := range daemons {
		byNode[d.node] = d
		if d.cfg.Spawn == SpawnIntercept {
			cfg := d.cfg
			w.SpawnInterceptor = func(parent *mpi.Rank, maxprocs int) sim.Duration {
				return sim.Duration(maxprocs) * cfg.InterceptPerProc
			}
		}
	}
	hooks := &mpi.Hooks{
		ProcessStarted: func(r *mpi.Rank) {
			if d := byNode[r.Node()]; d != nil {
				d.adopt(r)
			}
		},
		ProcessExited: func(r *mpi.Rank) {
			if d := byNode[r.Node()]; d != nil {
				d.processExited(r)
			}
		},
		CommCreated: func(r *mpi.Rank, c *mpi.Comm) {
			if d := byNode[r.Node()]; d != nil {
				d.commCreated(c)
			}
		},
		WinCreated: func(r *mpi.Rank, win *mpi.Win) {
			if d := byNode[r.Node()]; d != nil {
				d.winCreated(r, win)
			}
		},
		WinFreed: func(r *mpi.Rank, win *mpi.Win) {
			if d := byNode[r.Node()]; d != nil {
				d.winFreed(win)
			}
		},
		NameSet: func(r *mpi.Rank, obj any, name string) {
			if d := byNode[r.Node()]; d != nil {
				d.nameSet(obj, name)
			}
		},
		ProcessLost: func(r *mpi.Rank, reason string) {
			if d := byNode[r.Node()]; d != nil && !d.crashed {
				d.processLost(r.Probes().Name(), r.NodeName(), reason)
			}
		},
	}
	w.AddHooks(hooks)
	return &Registry{byNode: byNode}
}

// Adopt attaches the daemon to an already-running process — the
// supervisor's re-attach path for a respawned incarnation. It reuses the
// same adoption machinery process-start hooks go through, so the new
// incarnation re-reports the process's resources (which also clears the
// front end's lost mark) and re-instruments the enables applied so far.
func (d *Daemon) Adopt(r *mpi.Rank) { d.adopt(r) }

// EnabledCount returns how many metric-focus enable requests the daemon
// currently holds — the resynchronization protocol's double-enable guard.
func (d *Daemon) EnabledCount() int { return len(d.enabled) }

// adopt starts managing a process: resource reports, function discovery,
// probe cost accounting, and instrumentation for already-enabled metrics.
// With the attach spawn method, adoption of spawned processes is delayed by
// the attach latency.
func (d *Daemon) adopt(r *mpi.Rank) {
	at := d.eng.Now()
	if d.cfg.Spawn == SpawnAttach && r.ParentComm() != nil {
		at = at.Add(d.cfg.AttachLatency)
	}
	// An injected attach delay (slow daemon startup) postpones adoption
	// further; data before the attach point is simply never collected.
	if d.attachUntil > at {
		at = d.attachUntil
	}
	if at > d.eng.Now() {
		d.eng.At(at, func() { d.adoptNow(r) })
		return
	}
	d.adoptNow(r)
}

// DelayAttachUntil postpones adoption of processes that start before t —
// fault injection for a daemon that comes up late.
func (d *Daemon) DelayAttachUntil(t sim.Time) {
	if t > d.attachUntil {
		d.attachUntil = t
	}
}

func (d *Daemon) adoptNow(r *mpi.Rank) {
	rc := &rankCtx{d: d, r: r, modules: map[string][]string{}, sentEdges: map[[2]string]bool{}}
	d.ranks = append(d.ranks, rc)
	r.Probes().PerProbeCost = d.cfg.PerProbeCost
	r.Probes().OnFirstCall = func(f *probe.Function) { rc.functionDiscovered(f) }
	if tr := d.tracer; tr != nil {
		proc, node := r.Probes().Name(), r.NodeName()
		r.Probes().OnFire = func(fn string, _ probe.Where, n int, t sim.Time) {
			tr.ProbeFired(proc, node, fn, t, n)
		}
	}

	d.sendUpdate(Update{
		Kind: UpAddResource, Time: d.eng.Now(),
		Path: machinePath(r.NodeName(), r.Probes().Name()),
	})
	// Seed with functions already seen before adoption (attach method).
	for _, f := range r.Probes().Stack() {
		rc.functionDiscovered(f)
	}
	// Apply pending metric-focus enables to the new process.
	for _, req := range d.enabled {
		d.instrumentRank(rc, req)
	}
}

func machinePath(node, proc string) string { return "/Machine/" + node + "/" + proc }

func (rc *rankCtx) functionDiscovered(f *probe.Function) {
	fns := rc.modules[f.Module]
	for _, existing := range fns {
		if existing == f.Name {
			return
		}
	}
	rc.modules[f.Module] = append(fns, f.Name)
	rc.d.sendUpdate(Update{
		Kind: UpAddResource, Time: rc.d.eng.Now(),
		Path: "/Code/" + f.Module + "/" + f.Name,
	})
	// Extend module-watching instances (module-level Code foci pick up
	// newly discovered functions).
	for _, li := range rc.insts {
		if li.mdli.ModuleWatch() == f.Module {
			li.mdli.ExtendFunction(f.Name)
		}
	}
}

// processExited flushes a final sample of the exiting process's instances
// (programs shorter than a sampling interval would otherwise report nothing)
// and reports the exit.
func (d *Daemon) processExited(r *mpi.Rank) {
	for _, rc := range d.ranks {
		if rc.r == r {
			d.sampleRank(rc)
			rc.exited = true
		}
	}
	d.sendUpdate(Update{
		Kind: UpProcessExit, Time: d.eng.Now(),
		Proc: r.Probes().Name(),
		Path: machinePath(r.NodeName(), r.Probes().Name()),
	})
}

// sampleRank flushes one process's instances and call edges immediately.
func (d *Daemon) sampleRank(rc *rankCtx) {
	now := d.eng.Now()
	cpu := rc.r.CPUTimeAt(now)
	var batch []Sample
	for _, li := range rc.insts {
		batch = append(batch, Sample{
			Metric: li.req.metricName,
			Focus:  li.req.focus,
			Proc:   rc.r.Probes().Name(),
			Time:   now,
			Delta:  li.mi.SampleDelta(now, cpu),
			Value:  li.mi.SampleValue(now, cpu),
		})
	}
	if len(batch) > 0 {
		d.sendSamples(batch)
	}
	rc.flushEdges(now)
}

func (rc *rankCtx) flushEdges(now sim.Time) {
	for _, e := range rc.r.Probes().CallEdges() {
		if !rc.sentEdges[e] {
			rc.sentEdges[e] = true
			rc.d.sendUpdate(Update{
				Kind: UpCallEdge, Time: now,
				Proc: rc.r.Probes().Name(), Caller: e[0], Callee: e[1],
			})
		}
	}
}

func (d *Daemon) commCreated(c *mpi.Comm) {
	d.sendUpdate(Update{
		Kind: UpAddResource, Time: d.eng.Now(),
		Path:    "/SyncObject/Message/" + fmt.Sprintf("comm-%d", c.ID()),
		Display: c.Name(),
	})
}

// winCreated reports a new RMA window resource under /SyncObject/Window,
// with the N-M unique identifier collected at the MPI_Win_create return
// point (§4.2.1). Only the window's rank-0 handle produces the report, to
// avoid duplicates.
func (d *Daemon) winCreated(r *mpi.Rank, win *mpi.Win) {
	if win.Comm().RankOf(r) != 0 {
		return
	}
	d.sendUpdate(Update{
		Kind: UpAddResource, Time: d.eng.Now(),
		Path: "/SyncObject/Window/" + win.UniqueID(),
	})
	if ic := win.InternalComm(); ic != nil {
		// LAM embeds a communicator in the window (Fig 23).
		d.commCreated(ic)
	}
}

func (d *Daemon) winFreed(win *mpi.Win) {
	d.sendUpdate(Update{
		Kind: UpRetire, Time: d.eng.Now(),
		Path: "/SyncObject/Window/" + win.UniqueID(),
	})
}

func (d *Daemon) nameSet(obj any, name string) {
	switch o := obj.(type) {
	case *mpi.Comm:
		d.sendUpdate(Update{
			Kind: UpSetName, Time: d.eng.Now(),
			Path: "/SyncObject/Message/" + fmt.Sprintf("comm-%d", o.ID()), Display: name,
		})
	case *mpi.Win:
		d.sendUpdate(Update{
			Kind: UpSetName, Time: d.eng.Now(),
			Path: "/SyncObject/Window/" + o.UniqueID(), Display: name,
		})
		if ic := o.InternalComm(); ic != nil {
			d.sendUpdate(Update{
				Kind: UpSetName, Time: d.eng.Now(),
				Path: "/SyncObject/Message/" + fmt.Sprintf("comm-%d", ic.ID()), Display: name,
			})
		}
	}
}

// Enable instruments the metric-focus pair on every owned process matching
// the focus's Machine selection, and remembers the request for processes
// adopted later. Returns how many processes were instrumented.
func (d *Daemon) Enable(metricName string, focus resource.Focus) (int, error) {
	cm := d.lib.Metric(metricName)
	if cm == nil {
		return 0, fmt.Errorf("daemon: unknown metric %q", metricName)
	}
	req := enableReq{metricName: metricName, focus: focus}
	d.enabled = append(d.enabled, req)
	n := 0
	for _, rc := range d.ranks {
		if d.instrumentRank(rc, req) {
			n++
		}
	}
	return n, nil
}

// Disable removes the metric-focus pair's instrumentation everywhere.
func (d *Daemon) Disable(metricName string, focus resource.Focus) {
	key := focus.Key()
	for i, req := range d.enabled {
		if req.metricName == metricName && req.focus.Key() == key {
			d.enabled = append(d.enabled[:i], d.enabled[i+1:]...)
			break
		}
	}
	for _, rc := range d.ranks {
		kept := rc.insts[:0]
		for _, li := range rc.insts {
			if li.req.metricName == metricName && li.req.focus.Key() == key {
				li.mdli.Remove()
			} else {
				kept = append(kept, li)
			}
		}
		rc.insts = kept
	}
}

// instrumentRank applies one enable request to one process if the focus's
// machine selection covers it.
func (d *Daemon) instrumentRank(rc *rankCtx, req enableReq) bool {
	if node := req.focus.MachineNode(); node != "" && node != rc.r.NodeName() {
		return false
	}
	if proc := req.focus.MachineProcess(); proc != "" && proc != rc.r.Probes().Name() {
		return false
	}
	cm := d.lib.Metric(req.metricName)
	mdli, err := cm.Instantiate(rc, req.focus)
	if err != nil {
		// Unconstrainable combinations are skipped silently, as Paradyn
		// refuses such pairs in its UI.
		return false
	}
	li := &liveInst{
		req:  req,
		mdli: mdli,
		mi: &metric.Instance{
			Def: cm.Def(), Focus: req.focus, Proc: rc.r.Probes().Name(), Acc: mdli.Acc,
		},
	}
	rc.insts = append(rc.insts, li)
	return true
}

// Start schedules the daemon's periodic sampling (and, when configured, its
// heartbeat beacon). Sampling stops when Stop is called or the simulation
// ends.
func (d *Daemon) Start() {
	d.scheduleTick()
	d.scheduleHeartbeat()
}

// Stop halts sampling.
func (d *Daemon) Stop() { d.stopped = true }

func (d *Daemon) scheduleTick() {
	d.eng.After(d.cfg.SampleInterval, func() {
		if d.stopped {
			return
		}
		d.tick()
		d.scheduleTick()
	})
}

// tick samples every live instance and flushes call-graph discoveries. A
// hang-injected daemon skips the tick entirely (the data gap is the fault);
// a recovered one first replays its outbox so report order is preserved.
func (d *Daemon) tick() {
	if d.Hung() {
		return
	}
	d.flushOutbox()
	n := 0
	for _, rc := range d.ranks {
		if !rc.exited {
			d.sampleRank(rc)
			n++
		}
	}
	if d.tracer != nil {
		d.tracer.DaemonSample(d.name, d.nodeName, d.eng.Now(), n)
		d.flushBulk()
		d.flushTraceShards()
	}
}

// ProbeExecutions totals probe-handler executions across the daemon's
// processes (overhead reporting).
func (d *Daemon) ProbeExecutions() int64 {
	var n int64
	for _, rc := range d.ranks {
		n += rc.r.Probes().Executions
	}
	return n
}

// Modules returns the module→functions map merged across the daemon's
// processes (sorted), for inspection.
func (d *Daemon) Modules() map[string][]string {
	out := map[string][]string{}
	for _, rc := range d.ranks {
		for m, fns := range rc.modules {
			out[m] = append(out[m], fns...)
		}
	}
	for m, fns := range out {
		sort.Strings(fns)
		out[m] = dedupe(fns)
	}
	return out
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
