package daemon

// Tests for the trace-loss accounting of the resilience layer: spans evicted
// from the bounded report outbox (legacy TraceSink path) or the bulk queue
// must surface in the OutboxLost counter shards carry to the timeline, spans
// stranded by a permanently-down transport must surface as undelivered, and
// replay must preserve delivery order across interleaved samples, updates and
// shards.

import (
	"errors"
	"fmt"
	"testing"

	"pperf/internal/mdl"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

var errSinkDown = errors.New("sink down")

// ctlSink is a Transport+TraceSink with a switchable outage that records
// every delivery in arrival order — the legacy shared-path transport.
type ctlSink struct {
	down   bool
	events []string
	shards []trace.Shard
}

func (s *ctlSink) Samples(batch []Sample) error {
	if s.down {
		return errSinkDown
	}
	s.events = append(s.events, "samples")
	return nil
}

func (s *ctlSink) Update(u Update) error {
	if s.down {
		return errSinkDown
	}
	s.events = append(s.events, fmt.Sprintf("update:%d", u.Kind))
	return nil
}

func (s *ctlSink) TraceShard(sh trace.Shard) error {
	if s.down {
		return errSinkDown
	}
	s.events = append(s.events, fmt.Sprintf("shard:%d", len(sh.Spans)))
	s.shards = append(s.shards, sh)
	return nil
}

// bulkSink adds a BulkSink channel with its own outage switch, mirroring the
// two-channel TCP transport.
type bulkSink struct {
	ctlSink
	bulkDown   bool
	bulkShards []trace.Shard
}

func (s *bulkSink) BulkShard(sh trace.Shard) error {
	if s.bulkDown {
		return errSinkDown
	}
	s.bulkShards = append(s.bulkShards, sh)
	return nil
}

func mkShard(n int) trace.Shard {
	return trace.Shard{Proc: "p{0}", Node: "node0", Spans: make([]trace.Span, n)}
}

func TestOutboxEvictionCountsShardSpans(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &ctlSink{down: true}
	cfg := DefaultConfig()
	cfg.OutboxLimit = 2
	d := New(eng, 0, "node0", mdl.StdLib(), sink, cfg)
	d.EnableTracing(trace.New(&trace.Config{FlushWatermark: -1}))

	d.sendShard(mkShard(3))
	d.sendShard(mkShard(4))
	d.sendShard(mkShard(5)) // evicts the 3-span shard

	if _, dropped := d.OutboxDepth(); dropped != 1 {
		t.Errorf("dropped reports = %d, want 1", dropped)
	}
	if got := d.LostSpans()["p{0}"]; got != 3 {
		t.Errorf("lost spans = %d, want 3 (the evicted shard's)", got)
	}

	sink.down = false
	d.flushOutbox()
	if len(sink.shards) != 2 {
		t.Fatalf("delivered %d shards, want 2", len(sink.shards))
	}
	tl := trace.NewTimeline()
	for _, sh := range sink.shards {
		if sh.OutboxLost != 3 {
			t.Errorf("shard OutboxLost = %d, want 3", sh.OutboxLost)
		}
		tl.Ingest(sh)
	}
	if tl.OutboxLost() != 3 || tl.Lost() != 3 {
		t.Errorf("timeline OutboxLost = %d, Lost = %d, want 3, 3", tl.OutboxLost(), tl.Lost())
	}
}

func TestBulkQueueEvictionCountsSpans(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &bulkSink{bulkDown: true}
	cfg := DefaultConfig()
	cfg.BulkQueueLimit = 2
	d := New(eng, 0, "node0", mdl.StdLib(), sink, cfg)
	d.EnableTracing(trace.New(&trace.Config{FlushWatermark: -1}))

	d.sendShard(mkShard(3))
	d.sendShard(mkShard(4))
	d.sendShard(mkShard(5)) // bulk queue bound evicts the 3-span shard
	if d.BulkDepth() != 2 {
		t.Errorf("bulk depth = %d, want 2", d.BulkDepth())
	}
	if got := d.LostSpans()["p{0}"]; got != 3 {
		t.Errorf("lost spans = %d, want 3", got)
	}

	sink.bulkDown = false
	d.flushBulk()
	if d.BulkDepth() != 0 {
		t.Errorf("bulk depth after flush = %d, want 0", d.BulkDepth())
	}
	if len(sink.bulkShards) != 2 {
		t.Fatalf("delivered %d bulk shards, want 2", len(sink.bulkShards))
	}
	for _, sh := range sink.bulkShards {
		if sh.OutboxLost != 3 {
			t.Errorf("replayed shard OutboxLost = %d, want 3", sh.OutboxLost)
		}
	}
	// Bulk-channel trouble must leave no trace of itself in the timeline:
	// no transport events on the daemon's own track, and nothing in the
	// report outbox.
	if rec := d.tracer.Recorder(NameFor("node0")); rec != nil && rec.Len() > 0 {
		t.Errorf("bulk path recorded %d daemon-track spans; timeline must not depend on shipping", rec.Len())
	}
	if queued, _ := d.OutboxDepth(); queued != 0 {
		t.Errorf("shards leaked into the report outbox: depth %d", queued)
	}
}

func TestFlushTraceCountsUndeliveredSpans(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &bulkSink{ctlSink: ctlSink{down: true}, bulkDown: true}
	d := New(eng, 0, "node0", mdl.StdLib(), sink, DefaultConfig())
	tr := trace.New(&trace.Config{FlushWatermark: -1})
	d.EnableTracing(tr)

	for i := 0; i < 5; i++ {
		tr.Mark("p{0}", "node0", "m", eng.Now())
	}
	d.FlushTrace()

	if got := d.UndeliveredSpans()["p{0}"]; got != 5 {
		t.Errorf("undelivered spans = %d, want 5", got)
	}
	if d.BulkDepth() != 0 {
		t.Errorf("stranded shards still queued: depth %d", d.BulkDepth())
	}
	// A second flush with nothing new must not double-count.
	d.FlushTrace()
	if got := d.UndeliveredSpans()["p{0}"]; got != 5 {
		t.Errorf("undelivered spans after re-flush = %d, want 5", got)
	}

	// The timeline's idempotent note keeps the per-track maximum.
	tl := trace.NewTimeline()
	for proc, n := range d.UndeliveredSpans() {
		tl.NoteUndelivered(proc, n)
		tl.NoteUndelivered(proc, n)
	}
	if tl.Undelivered() != 5 {
		t.Errorf("timeline undelivered = %d, want 5", tl.Undelivered())
	}
}

func TestOutboxReplayPreservesInterleavedOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &ctlSink{down: true}
	cfg := DefaultConfig()
	cfg.OutboxLimit = 4
	d := New(eng, 0, "node0", mdl.StdLib(), sink, cfg)
	d.EnableTracing(trace.New(&trace.Config{FlushWatermark: -1}))

	d.sendShard(mkShard(2)) // evicted below: its 2 spans must be accounted
	d.sendUpdate(Update{Kind: UpAddResource, Path: "/Machine/node0/p{0}"})
	d.sendSamples([]Sample{{Metric: "m"}})
	d.sendShard(mkShard(3))
	d.sendUpdate(Update{Kind: UpHeartbeat}) // 5th report: evicts the first

	if _, dropped := d.OutboxDepth(); dropped != 1 {
		t.Errorf("dropped reports = %d, want 1", dropped)
	}
	if got := d.LostSpans()["p{0}"]; got != 2 {
		t.Errorf("lost spans = %d, want 2", got)
	}

	sink.down = false
	d.flushOutbox()
	want := []string{
		fmt.Sprintf("update:%d", UpAddResource),
		"samples",
		"shard:3",
		fmt.Sprintf("update:%d", UpHeartbeat),
	}
	if len(sink.events) != len(want) {
		t.Fatalf("delivered %v, want %v", sink.events, want)
	}
	for i := range want {
		if sink.events[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", sink.events, want)
		}
	}
	if sink.shards[0].OutboxLost != 2 {
		t.Errorf("surviving shard OutboxLost = %d, want 2", sink.shards[0].OutboxLost)
	}
	if queued, _ := d.OutboxDepth(); queued != 0 {
		t.Errorf("outbox not drained: %d left", queued)
	}
}

func TestFillHookShipsAtWatermark(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &bulkSink{}
	d := New(eng, 0, "node0", mdl.StdLib(), sink, DefaultConfig())
	tr := trace.New(&trace.Config{RingCapacity: 8, FlushWatermark: 4})
	d.EnableTracing(tr)

	for i := 0; i < 3; i++ {
		tr.Mark("p{0}", "node0", "m", eng.Now())
	}
	if len(sink.bulkShards) != 0 {
		t.Fatalf("shipped below the watermark: %d shards", len(sink.bulkShards))
	}
	tr.Mark("p{0}", "node0", "m", eng.Now()) // 4th span reaches the watermark
	if len(sink.bulkShards) != 1 || len(sink.bulkShards[0].Spans) != 4 {
		t.Fatalf("want one 4-span shard at the watermark, got %+v", sink.bulkShards)
	}
	if rec := tr.Recorder("p{0}"); rec.Len() != 0 {
		t.Errorf("recorder not drained by eager ship: %d left", rec.Len())
	}
}

func TestFillHookNotInstalledWithoutBulkSink(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &ctlSink{}
	d := New(eng, 0, "node0", mdl.StdLib(), sink, DefaultConfig())
	tr := trace.New(&trace.Config{RingCapacity: 8, FlushWatermark: 2})
	d.EnableTracing(tr)

	for i := 0; i < 6; i++ {
		tr.Mark("p{0}", "node0", "m", eng.Now())
	}
	if len(sink.shards) != 0 {
		t.Errorf("TraceSink-only transport shipped eagerly: %d shards", len(sink.shards))
	}
	d.flushTraceShards() // the tick-coupled path still drains everything
	if len(sink.shards) != 1 || len(sink.shards[0].Spans) != 6 {
		t.Errorf("tick flush delivered %+v, want one 6-span shard", sink.shards)
	}
}
