// Package daemon implements the tool's per-node daemon (paradynd in the
// paper): it owns the application processes on its node, inserts and deletes
// instrumentation on request, samples metric values on a fixed cadence,
// discovers resources at run time (processes, functions, communicators, RMA
// windows, spawned children), and forwards everything to the front end over
// a transport. A daemon definition carries the MPI implementation attribute
// that §4.1 adds for non-shared-filesystem starts.
package daemon

import (
	"pperf/internal/datasource"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// The report types daemons emit are defined in internal/datasource — the
// analysis plane ingests them from live transports and recorded session
// archives alike — and aliased here so daemon code and the gob wire
// encoding read unchanged.
type (
	// Sample is one sampled metric delta for one process.
	Sample = datasource.Sample
	// UpdateKind enumerates resource-update reports (§4.2.3).
	UpdateKind = datasource.UpdateKind
	// Update is a resource-update report from daemon to front end.
	Update = datasource.Update
)

const (
	// UpAddResource announces a new resource at Path.
	UpAddResource = datasource.UpAddResource
	// UpRetire marks the resource at Path deallocated.
	UpRetire = datasource.UpRetire
	// UpSetName attaches a user-friendly display name to Path.
	UpSetName = datasource.UpSetName
	// UpCallEdge reports an observed caller→callee pair.
	UpCallEdge = datasource.UpCallEdge
	// UpProcessExit reports that the process named Proc finished.
	UpProcessExit = datasource.UpProcessExit
	// UpProcessLost reports that the process named Proc was forcibly
	// terminated (node crash, job abort) without exiting cleanly.
	UpProcessLost = datasource.UpProcessLost
	// UpHeartbeat is a periodic liveness beacon carrying no resource change;
	// the front end uses it (and any other report stamped with Daemon) to
	// detect crashed or hung daemons.
	UpHeartbeat = datasource.UpHeartbeat
)

// Transport carries daemon reports to the front end. The in-process
// implementation calls the front end directly; the TCP implementation gob-
// encodes over a socket. A non-nil error means the report was NOT observed
// by the front end (after any retries the transport performs internally);
// the daemon buffers such reports in its outbox and replays them when the
// transport recovers.
type Transport interface {
	Samples(batch []Sample) error
	Update(u Update) error
}

// TraceSink is the optional Transport extension for the tracing subsystem:
// transports that implement it also carry trace shards to the front end.
// The daemon type-asserts for it, so Transport stubs in tests keep working
// untouched (their shards are silently discarded).
type TraceSink interface {
	TraceShard(sh trace.Shard) error
}

// BulkSink is the optional Transport extension for the dedicated bulk
// trace-streaming channel: shards sent through BulkShard move on their own
// stream (a second TCP connection with its own retry/backoff and dedupe for
// the wire transport, a direct call in process), so bulk trace volume never
// sits on the sampling path. When a transport implements BulkSink the
// daemon queues shards in a separate bounded bulk queue instead of the
// report outbox; TraceSink-only transports keep the legacy shared path.
type BulkSink interface {
	BulkShard(sh trace.Shard) error
}

// SpawnMethod selects how the tool supports MPI_Comm_spawn (§4.2.2).
type SpawnMethod int

const (
	// SpawnIntercept wraps MPI_Comm_spawn via the PMPI interface, starting
	// a tool daemon per child: simple, but inflates the measured cost of
	// the spawn operation.
	SpawnIntercept SpawnMethod = iota
	// SpawnAttach lets the spawn proceed untouched and attaches to the new
	// processes afterwards using MPIR-proctable-style information: lower
	// overhead, but instrumentation starts late.
	SpawnAttach
)

// Config controls daemon behaviour.
type Config struct {
	// SampleInterval is the metric sampling cadence (default 0.2 s, the
	// histogram's base granularity).
	SampleInterval sim.Duration
	// PerProbeCost is the virtual-time cost charged per probe execution.
	PerProbeCost sim.Duration
	// Spawn selects the dynamic-process-creation support method.
	Spawn SpawnMethod
	// AttachLatency is how long after a spawn the attach method takes to
	// reach the new processes (during which their activity is unobserved).
	AttachLatency sim.Duration
	// InterceptPerProc is the daemon-startup overhead the intercept method
	// adds to each spawned process.
	InterceptPerProc sim.Duration
	// MPIImplName is the daemon-definition attribute naming the MPI
	// implementation (LAM or MPICH), required on non-shared filesystems.
	MPIImplName string
	// Heartbeat, when nonzero, makes the daemon emit a liveness beacon on
	// that virtual-time cadence. Zero (the default) disables heartbeats so
	// fault-free runs schedule no extra events and stay byte-identical with
	// historical behaviour; the fault subsystem turns it on.
	Heartbeat sim.Duration
	// OutboxLimit bounds the number of reports buffered while the front-end
	// transport is down; beyond it the oldest reports are dropped (counted
	// in Dropped). Zero means DefaultOutboxLimit.
	OutboxLimit int
	// BulkQueueLimit bounds the number of trace shards buffered while the
	// bulk channel is down; beyond it the oldest shards are evicted and
	// their span counts folded into the per-track OutboxLost counter. Zero
	// means DefaultBulkQueueLimit.
	BulkQueueLimit int
}

// DefaultOutboxLimit is the outbox bound used when Config.OutboxLimit is 0.
const DefaultOutboxLimit = 4096

// DefaultBulkQueueLimit is the bulk-queue bound used when
// Config.BulkQueueLimit is 0.
const DefaultBulkQueueLimit = 1024

// DefaultConfig returns the standard daemon configuration.
func DefaultConfig() Config {
	return Config{
		SampleInterval:   200 * sim.Millisecond,
		PerProbeCost:     80 * sim.Nanosecond,
		Spawn:            SpawnIntercept,
		AttachLatency:    25 * sim.Millisecond,
		InterceptPerProc: 40 * sim.Millisecond,
	}
}
