package daemon

import (
	"testing"

	"pperf/internal/cluster"
	"pperf/internal/mdl"
	"pperf/internal/mpi"
	"pperf/internal/resource"
	"pperf/internal/sim"
)

// recorder captures everything a daemon forwards.
type recorder struct {
	samples []Sample
	updates []Update
}

func (r *recorder) Samples(batch []Sample) error {
	r.samples = append(r.samples, batch...)
	return nil
}

func (r *recorder) Update(u Update) error {
	r.updates = append(r.updates, u)
	return nil
}

// rig builds a 2-node world with one daemon per node wired to a recorder.
func rig(t *testing.T, impl mpi.ImplKind, cfg Config) (*sim.Engine, *mpi.World, []*Daemon, *recorder) {
	t.Helper()
	eng := sim.NewEngine(13)
	spec := cluster.DefaultSpec(2, 1)
	w := mpi.NewWorld(eng, spec, mpi.NewImpl(impl))
	rec := &recorder{}
	var ds []*Daemon
	for node := range spec.Nodes {
		ds = append(ds, New(eng, node, spec.Nodes[node].Name, mdl.StdLib(), rec, cfg))
	}
	AttachAll(w, ds)
	return eng, w, ds, rec
}

func pingProgram(iters int) mpi.Program {
	return func(r *mpi.Rank, _ []string) {
		c := r.World()
		for i := 0; i < iters; i++ {
			if r.Rank() == 0 {
				r.Call("app.c", "produce", func() { r.Compute(10 * sim.Millisecond) })
				c.Send(r, nil, 1, mpi.Byte, 1, 0)
			} else {
				c.Recv(r, nil, 1, mpi.Byte, 0, 0)
			}
		}
	}
}

func TestDaemonAdoptsAndSamples(t *testing.T) {
	eng, w, ds, rec := rig(t, mpi.LAM, DefaultConfig())
	w.Register("p", pingProgram(100))
	if _, err := w.LaunchN("p", 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ds[0].Enable("msgs_sent", resource.WholeProgram()); err != nil {
		t.Fatal(err)
	}
	if _, err := ds[1].Enable("msgs_sent", resource.WholeProgram()); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		d.Start()
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ds[0].NumProcesses() != 1 || ds[1].NumProcesses() != 1 {
		t.Errorf("adoption counts: %d/%d", ds[0].NumProcesses(), ds[1].NumProcesses())
	}
	total := 0.0
	for _, s := range rec.samples {
		if s.Metric == "msgs_sent" {
			total += s.Delta
		}
	}
	if total != 100 {
		t.Errorf("sampled msgs = %v, want 100", total)
	}
}

func TestDaemonResourceUpdates(t *testing.T) {
	eng, w, ds, rec := rig(t, mpi.LAM, DefaultConfig())
	w.Register("p", pingProgram(20))
	if _, err := w.LaunchN("p", 2, nil); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		d.Start()
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var sawProc, sawFunc, sawEdge, sawExit bool
	for _, u := range rec.updates {
		switch {
		case u.Kind == UpAddResource && u.Path == "/Machine/node0/p{0}":
			sawProc = true
		case u.Kind == UpAddResource && u.Path == "/Code/app.c/produce":
			sawFunc = true
		case u.Kind == UpCallEdge && u.Caller == "produce":
			sawEdge = true
		case u.Kind == UpProcessExit:
			sawExit = true
		}
	}
	if !sawProc || !sawFunc || !sawExit {
		t.Errorf("updates missing: proc=%v func=%v exit=%v", sawProc, sawFunc, sawExit)
	}
	_ = sawEdge // produce has no traced callees in this program
	mods := ds[0].Modules()
	if len(mods["app.c"]) == 0 {
		t.Errorf("modules = %v", mods)
	}
}

func TestDaemonDisableRemovesProbes(t *testing.T) {
	eng, w, ds, _ := rig(t, mpi.LAM, DefaultConfig())
	w.Register("p", pingProgram(200))
	if _, err := w.LaunchN("p", 2, nil); err != nil {
		t.Fatal(err)
	}
	focus := resource.WholeProgram()
	if _, err := ds[0].Enable("msgs_sent", focus); err != nil {
		t.Fatal(err)
	}
	// Disable mid-run; probe executions stop growing afterwards.
	var at1s int64
	eng.At(sim.Time(1*sim.Second), func() {
		ds[0].Disable("msgs_sent", focus)
		at1s = ds[0].ProbeExecutions()
	})
	for _, d := range ds {
		d.Start()
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Only the tag-discovery-free rig runs here, so executions equal the
	// metric's; after disable they must not grow.
	if got := ds[0].ProbeExecutions(); got != at1s {
		t.Errorf("probe executions grew after disable: %d → %d", at1s, got)
	}
}

func TestDaemonEnableUnknownMetric(t *testing.T) {
	_, _, ds, _ := rig(t, mpi.LAM, DefaultConfig())
	if _, err := ds[0].Enable("no_such_metric", resource.WholeProgram()); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestDaemonMachineFocusPlacement(t *testing.T) {
	eng, w, ds, rec := rig(t, mpi.LAM, DefaultConfig())
	w.Register("p", pingProgram(50))
	if _, err := w.LaunchN("p", 2, nil); err != nil {
		t.Fatal(err)
	}
	// Focus restricted to node1: only p{1} gets instrumented.
	focus := resource.WholeProgram().WithMachine("/Machine/node1/p{1}")
	for _, d := range ds {
		if _, err := d.Enable("msgs_recv", focus); err != nil {
			t.Fatal(err)
		}
		d.Start()
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range rec.samples {
		if s.Proc != "p{1}" {
			t.Errorf("sample from %s leaked through machine focus", s.Proc)
		}
	}
}

func TestSpawnAttachDelaysAdoption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spawn = SpawnAttach
	cfg.AttachLatency = 50 * sim.Millisecond
	eng, w, ds, _ := rig(t, mpi.LAM, cfg)
	w.Register("child", func(r *mpi.Rank, _ []string) { r.Compute(200 * sim.Millisecond) })
	w.Register("p", func(r *mpi.Rank, _ []string) {
		if _, err := r.World().Spawn(r, "child", nil, 2, nil, 0); err != nil {
			t.Error(err)
		}
	})
	if _, err := w.LaunchN("p", 1, nil); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		d.Start()
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range ds {
		total += d.NumProcesses()
	}
	if total != 3 { // parent + 2 children eventually adopted
		t.Errorf("adopted %d processes, want 3", total)
	}
}

func TestModuleWatchExtendsInstrumentation(t *testing.T) {
	// A module-level Code focus must pick up functions discovered after the
	// metric was enabled.
	eng, w, ds, rec := rig(t, mpi.LAM, DefaultConfig())
	w.Register("p", func(r *mpi.Rank, _ []string) {
		r.Call("late.c", "early", func() { r.Compute(300 * sim.Millisecond) })
		r.Call("late.c", "late", func() { r.Compute(300 * sim.Millisecond) })
	})
	if _, err := w.LaunchN("p", 1, nil); err != nil {
		t.Fatal(err)
	}
	focus := resource.WholeProgram().WithCode("/Code/late.c")
	if _, err := ds[0].Enable("cpu_inclusive", focus); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		d.Start()
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	cpu := 0.0
	for _, s := range rec.samples {
		if s.Metric == "cpu_inclusive" {
			cpu += s.Delta
		}
	}
	if cpu < 0.55 { // both functions' compute, not just the first
		t.Errorf("module cpu = %v, want ≈0.6 (both functions)", cpu)
	}
}
