// Command pperfmark runs the PPerfMark benchmark suite under the tool and
// prints Tables 2 and 3 of the paper: per-program pass/fail with the
// tool's findings, for each MPI implementation.
//
// Usage:
//
//	pperfmark            # both tables, paper implementations
//	pperfmark -table 2   # MPI-1 half only
package main

import (
	"flag"
	"fmt"

	"pperf/internal/mpi"
	"pperf/internal/pperfmark"
)

func main() {
	table := flag.Int("table", 0, "which table to run: 2 (MPI-1), 3 (MPI-2), 0 = both")
	ext := flag.Bool("ext", false, "also run the extension programs beyond the paper's tables")
	flag.Parse()

	if *table == 0 || *table == 2 {
		rows := pperfmark.RunTable(false, []mpi.ImplKind{mpi.LAM, mpi.MPICH}, pperfmark.RunOptions{})
		fmt.Print(pperfmark.RenderTable("Table 2: PPerfMark MPI-1 program results (LAM, MPICH)", rows))
		fmt.Println()
	}
	if *table == 0 || *table == 3 {
		rows := pperfmark.RunTable(true, []mpi.ImplKind{mpi.LAM, mpi.MPICH2}, pperfmark.RunOptions{})
		fmt.Print(pperfmark.RenderTable("Table 3: PPerfMark MPI-2 program results (LAM, MPICH2)", rows))
		fmt.Println("\nFail* marks the paper's designed failure (system-time: no system-time metrics).")
	}
	if *ext {
		fmt.Println()
		var rows []pperfmark.TableRow
		for _, name := range pperfmark.ExtensionNames() {
			for _, impl := range []mpi.ImplKind{mpi.LAM, mpi.MPICH2, mpi.Reference} {
				res, err := pperfmark.Run(name, pperfmark.RunOptions{Impl: impl})
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				rows = append(rows, pperfmark.TableRow{Verdict: pperfmark.Judge(res)})
			}
		}
		fmt.Print(pperfmark.RenderTable("Extensions: delivered future work (passive target, MPI-I/O)", rows))
	}
}
