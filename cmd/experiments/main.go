// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated substrate and prints a reproduction
// report: for each artifact, what the paper reports, what this build
// measured, and the rendered output (condensed Performance Consultant trees,
// histograms, Jumpshot-style views, the gprof profile, the PPerfMark tables,
// and the Presta comparison).
//
// Usage:
//
//	experiments            # everything (takes a minute or two)
//	experiments -id fig3   # one experiment
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"

	"pperf/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run a single experiment by id")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, x := range experiments.IDs() {
			fmt.Println(x)
		}
		return
	}
	if *id != "" {
		res, err := experiments.Run(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		fmt.Print(res.Render())
		if !res.OK {
			os.Exit(1)
		}
		return
	}

	bad := 0
	for _, res := range experiments.RunAll() {
		fmt.Print(res.Render())
		fmt.Println()
		if !res.OK {
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("%d experiment(s) did not reproduce the paper's shape\n", bad)
		os.Exit(1)
	}
	fmt.Println("All experiments reproduced the paper's qualitative results.")
}
