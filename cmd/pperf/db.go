package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pperf/internal/faults"
	"pperf/internal/perfdb"
	"pperf/internal/pperfmark"
)

const dbUsage = `Usage: pperf db -store DIR <command>

Commands:
  add FILE       ingest a recorded archive (either format) into the store,
                 replaying it once to stamp the Consultant verdict
  list           list stored runs
  show ID        show one run's metadata and collected series
  diff A B       compare two stored runs (A = baseline); exits 3 when a
                 significant regression is found
  rm ID          remove a run from the store
  gc             delete unreferenced files under the store's runs/ directory
  serve ADDR     serve the store to db push/pull peers (ADDR like
                 127.0.0.1:7077; :0 picks a free port); blocks until SIGINT
  push RUN ADDR  stream one stored run to the store served at ADDR
                 (chunk-resumable; identical content is a no-op)
  pull ADDR [RUN|--all]
                 fetch one remote run — or, with --all, every remote run
                 not already held — into the store under fresh local IDs

Options:
`

// dbMain implements the `pperf db` subcommand over a perfdb store.
func dbMain(args []string) int {
	fs := flag.NewFlagSet("pperf db", flag.ExitOnError)
	storeDir := fs.String("store", "", "experiment store directory (created if missing)")
	label := fs.String("label", "", "label for the run being added (add only)")
	addrFile := fs.String("addr-file", "", "serve: write the chosen listen address to this file (for scripts using :0)")
	pullAll := fs.Bool("all", false, "pull: fetch every remote run not already held locally")
	syncFaults := fs.String("sync-faults", "", "fault plan shaping push/pull traffic (drop-transport chan=sync, degrade-link); see FAULTS.md")
	chunkBytes := fs.Int("chunk-bytes", perfdb.DefaultSyncChunkBytes, "push/pull transfer granularity in bytes")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, dbUsage)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "pperf db: -store is required")
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	st, err := perfdb.Open(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	verb, operands := rest[0], rest[1:]
	need := func(n int, what string) bool {
		if len(operands) != n {
			fmt.Fprintf(os.Stderr, "pperf db: %s takes %s\n", verb, what)
			return false
		}
		return true
	}
	switch verb {
	case "add":
		if !need(1, "one archive file") {
			return 2
		}
		return dbAdd(st, operands[0], *label)
	case "list":
		if !need(0, "no arguments") {
			return 2
		}
		for _, m := range st.Runs() {
			fmt.Println(m.Describe())
			if m.Verdict != "" {
				fmt.Printf("       consultant: %s\n", m.Verdict)
			}
		}
		return 0
	case "show":
		if !need(1, "one run ID") {
			return 2
		}
		return dbShow(st, operands[0])
	case "diff":
		if !need(2, "two run IDs (baseline first)") {
			return 2
		}
		return dbDiff(st, operands[0], operands[1])
	case "rm":
		if !need(1, "one run ID") {
			return 2
		}
		if err := st.Remove(operands[0]); err != nil {
			fmt.Fprintln(os.Stderr, "pperf db:", err)
			return 1
		}
		return 0
	case "gc":
		if !need(0, "no arguments") {
			return 2
		}
		removed, err := st.GC()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pperf db:", err)
			return 1
		}
		for _, name := range removed {
			fmt.Println("removed", name)
		}
		fmt.Printf("%d files removed\n", len(removed))
		return 0
	case "serve":
		if !need(1, "a listen address") {
			return 2
		}
		return dbServe(st, operands[0], *addrFile)
	case "push":
		if !need(2, "a run ID and a peer address") {
			return 2
		}
		cfg, ok := syncConfig(*syncFaults, *chunkBytes)
		if !ok {
			return 2
		}
		return dbPush(st, operands[0], operands[1], cfg)
	case "pull":
		if len(operands) < 1 || len(operands) > 2 {
			fmt.Fprintln(os.Stderr, "pperf db: pull takes a peer address and optionally a run ID (or --all)")
			return 2
		}
		runID := ""
		if len(operands) == 2 {
			runID = operands[1]
		}
		if runID == "--all" || runID == "-all" {
			runID = ""
		} else if runID == "" && !*pullAll {
			fmt.Fprintln(os.Stderr, "pperf db: pull needs a run ID, or --all to fetch every remote run")
			return 2
		}
		cfg, ok := syncConfig(*syncFaults, *chunkBytes)
		if !ok {
			return 2
		}
		return dbPull(st, operands[0], runID, cfg)
	default:
		fmt.Fprintf(os.Stderr, "pperf db: unknown command %q\n", verb)
		fs.Usage()
		return 2
	}
}

// dbAdd ingests one recorded archive, replaying it offline to compute the
// Consultant verdict stored in the index.
func dbAdd(st *perfdb.Store, path, label string) int {
	a, err := perfdb.LoadAny(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	if note := a.TruncationNote(); note != "" {
		fmt.Fprintln(os.Stderr, "pperf db:", note)
	}
	verdict := ""
	if res, err := pperfmark.Replay(a); err != nil {
		fmt.Fprintf(os.Stderr, "pperf db: no verdict (replay failed: %v)\n", err)
	} else if res.PC != nil {
		verdict = res.PC.Export().String()
	}
	m, err := st.AddArchive(a, perfdb.AddMeta{Label: label, Verdict: verdict})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	fmt.Printf("stored %s (%d events, %d bytes compacted)\n", m.ID, m.Events, m.Bytes)
	return 0
}

// dbShow prints one stored run: index entry, verdict, collected series.
func dbShow(st *perfdb.Store, id string) int {
	rv, err := st.OpenRun(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	fmt.Println(rv.Meta.Describe())
	if rv.Meta.Verdict != "" {
		fmt.Printf("consultant: %s\n", rv.Meta.Verdict)
	}
	fmt.Printf("coverage: %.2f, %d processes\n", rv.Coverage(), rv.ProcessCount())
	for _, p := range rv.Pairs() {
		s := rv.SeriesFor(p)
		h := s.Histogram()
		fmt.Printf("  %-22s @ %-40s total=%-12.6g bins=%d @ %v\n",
			p.Metric, p.Focus, h.Total(), h.NumFilled(), h.BinWidth())
	}
	return 0
}

// syncConfig builds the push/pull client configuration from the CLI
// flags, parsing the optional fault plan.
func syncConfig(faultSpec string, chunkBytes int) (perfdb.SyncConfig, bool) {
	cfg := perfdb.DefaultSyncConfig()
	cfg.ChunkBytes = chunkBytes
	if faultSpec != "" {
		plan, err := faults.Parse(faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pperf db:", err)
			return cfg, false
		}
		cfg.Faults = plan
		cfg.Seed = plan.Seed
	}
	return cfg, true
}

// dbServe serves the store until SIGINT/SIGTERM.
func dbServe(st *perfdb.Store, addr, addrFile string) int {
	srv, err := perfdb.Serve(st, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	fmt.Printf("pperf db: serving store %s at %s\n", st.Dir(), srv.Addr())
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pperf db:", err)
			srv.Close()
			return 1
		}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	return 0
}

// dbPush streams one stored run to a served peer store.
func dbPush(st *perfdb.Store, runID, addr string, cfg perfdb.SyncConfig) int {
	res, err := perfdb.Push(st, runID, addr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	switch {
	case res.Deduped:
		fmt.Printf("peer already has %s as %s (identical content)\n", res.RunID, res.RemoteID)
	default:
		resumed := ""
		if res.ResumedAt > 0 {
			resumed = fmt.Sprintf(", resumed at byte %d", res.ResumedAt)
		}
		fmt.Printf("pushed %s -> %s (%d bytes%s)\n", res.RunID, res.RemoteID, res.Bytes, resumed)
	}
	if res.Warning != "" {
		fmt.Fprintln(os.Stderr, "pperf db: warning:", res.Warning)
	}
	if res.Stats.Retries > 0 {
		fmt.Fprintf(os.Stderr, "pperf db: sync channel: %d frames, %d retries, %d reconnects\n",
			res.Stats.Frames, res.Stats.Retries, res.Stats.Reconnects)
	}
	return 0
}

// dbPull fetches one (or every) remote run into the local store.
func dbPull(st *perfdb.Store, addr, runID string, cfg perfdb.SyncConfig) int {
	results, stats, err := perfdb.Pull(st, addr, runID, cfg)
	for _, r := range results {
		switch {
		case r.Skipped:
			fmt.Printf("already have %s as %s (identical content)\n", r.RemoteID, r.LocalID)
		case r.LocalID != "":
			resumed := ""
			if r.ResumedAt > 0 {
				resumed = fmt.Sprintf(", resumed at byte %d", r.ResumedAt)
			}
			fmt.Printf("pulled %s -> %s (%d bytes%s)\n", r.RemoteID, r.LocalID, r.Bytes, resumed)
		}
		if r.Warning != "" {
			fmt.Fprintln(os.Stderr, "pperf db: warning:", r.Warning)
		}
	}
	if stats != nil && stats.Retries > 0 {
		fmt.Fprintf(os.Stderr, "pperf db: sync channel: %d frames, %d retries, %d reconnects\n",
			stats.Frames, stats.Retries, stats.Reconnects)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	return 0
}

// dbDiff renders the cross-run comparison; a significant regression makes
// the exit status 3 so scripts (and `make perfdb-golden`) can gate on it.
func dbDiff(st *perfdb.Store, baseID, newID string) int {
	base, err := st.OpenRun(baseID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	neu, err := st.OpenRun(newID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	rep := perfdb.Diff(base, neu)
	fmt.Print(rep.Render())
	if len(rep.Regressions()) > 0 {
		return 3
	}
	return 0
}
