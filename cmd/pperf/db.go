package main

// The `pperf db` command family is a registry of per-verb subcommands,
// each with its own FlagSet. Flags may appear before the verb (the
// historical calling convention, still used by scripts) or after it; a
// flag that the chosen verb does not accept is an error either way, so
// `db diff -all A B` fails instead of silently ignoring -all.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pperf/internal/faults"
	"pperf/internal/perfdb"
	"pperf/internal/pperfmark"
	"pperf/internal/sim"
)

// dbOpts holds every db flag value; each verb registers only the subset
// it accepts.
type dbOpts struct {
	store      string
	label      string
	addrFile   string
	pullAll    bool
	syncFaults string
	chunkBytes int
	format     string
	from       string
	to         string
	sinceFault bool
	alpha      float64
	minEffect  float64
}

// newDBOpts returns the defaults every parse starts from.
func newDBOpts() *dbOpts {
	return &dbOpts{chunkBytes: perfdb.DefaultSyncChunkBytes, format: "text", alpha: 0.05}
}

// dbFlagDefs registers one named flag onto a FlagSet, binding it to the
// shared option struct. Defaults read the current value so a flag given
// before the verb survives the per-verb re-parse.
var dbFlagDefs = map[string]func(fs *flag.FlagSet, o *dbOpts){
	"label": func(fs *flag.FlagSet, o *dbOpts) {
		fs.StringVar(&o.label, "label", o.label, "label for the run being added")
	},
	"addr-file": func(fs *flag.FlagSet, o *dbOpts) {
		fs.StringVar(&o.addrFile, "addr-file", o.addrFile, "write the chosen listen address to this file (for scripts using :0)")
	},
	"all": func(fs *flag.FlagSet, o *dbOpts) {
		fs.BoolVar(&o.pullAll, "all", o.pullAll, "fetch every remote run not already held locally")
	},
	"sync-faults": func(fs *flag.FlagSet, o *dbOpts) {
		fs.StringVar(&o.syncFaults, "sync-faults", o.syncFaults, "fault plan shaping transfer traffic (drop-transport chan=sync, degrade-link); see FAULTS.md")
	},
	"chunk-bytes": func(fs *flag.FlagSet, o *dbOpts) {
		fs.IntVar(&o.chunkBytes, "chunk-bytes", o.chunkBytes, "transfer granularity in bytes")
	},
	"format": func(fs *flag.FlagSet, o *dbOpts) {
		fs.StringVar(&o.format, "format", o.format, "output format: text or json (field names documented in PERFDB.md)")
	},
	"from": func(fs *flag.FlagSet, o *dbOpts) {
		fs.StringVar(&o.from, "from", o.from, "restrict the comparison to virtual times >= this duration (e.g. 1.5s)")
	},
	"to": func(fs *flag.FlagSet, o *dbOpts) {
		fs.StringVar(&o.to, "to", o.to, "restrict the comparison to virtual times < this duration")
	},
	"since-fault": func(fs *flag.FlagSet, o *dbOpts) {
		fs.BoolVar(&o.sinceFault, "since-fault", o.sinceFault, "anchor the window at the new run's first fired fault")
	},
	"alpha": func(fs *flag.FlagSet, o *dbOpts) {
		fs.Float64Var(&o.alpha, "alpha", o.alpha, "two-sided significance level: 0.10, 0.05 or 0.01")
	},
	"min-effect": func(fs *flag.FlagSet, o *dbOpts) {
		fs.Float64Var(&o.minEffect, "min-effect", o.minEffect, "suppress verdicts below this |relative change| (trend default 0.1)")
	},
}

// dbCommand is one verb of the registry.
type dbCommand struct {
	name     string
	operands string   // operand synopsis for usage lines
	summary  []string // help text; first line is the one-line summary
	flags    []string // accepted flag names (beyond the global -store)
	minArgs  int
	maxArgs  int
	argsWhat string // error text when the operand count is wrong
	noStore  bool   // runs without -store (help)
	run      func(st *perfdb.Store, o *dbOpts, operands []string) int
}

// dbCommands is the registry, in help order.
var dbCommands = []*dbCommand{
	{
		name: "add", operands: "FILE",
		summary: []string{
			"ingest a recorded archive (either format) into the store,",
			"replaying it once to stamp the Consultant verdict",
		},
		flags:   []string{"label"},
		minArgs: 1, maxArgs: 1, argsWhat: "one archive file",
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			return dbAdd(st, operands[0], o.label)
		},
	},
	{
		name:     "list",
		summary:  []string{"list stored runs"},
		argsWhat: "no arguments",
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			for _, m := range st.Runs() {
				fmt.Println(m.Describe())
				if m.Verdict != "" {
					fmt.Printf("       consultant: %s\n", m.Verdict)
				}
			}
			return 0
		},
	},
	{
		name: "show", operands: "ID",
		summary: []string{"show one run's metadata and collected series"},
		flags:   []string{"format"},
		minArgs: 1, maxArgs: 1, argsWhat: "one run ID",
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			return dbShow(st, operands[0], o)
		},
	},
	{
		name: "diff", operands: "A B",
		summary: []string{
			"compare two stored runs (A = baseline); exits 3 when a",
			"significant regression is found; -from/-to/-since-fault",
			"restrict the comparison to a virtual-time window",
		},
		flags:   []string{"format", "from", "to", "since-fault", "alpha", "min-effect"},
		minArgs: 2, maxArgs: 2, argsWhat: "two run IDs (baseline first)",
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			return dbDiff(st, operands[0], operands[1], o)
		},
	},
	{
		name: "trend", operands: "PROG",
		summary: []string{
			"fit every series of PROG's stored runs against the run index;",
			"exits 3 when any series is DRIFTING",
		},
		flags:   []string{"format", "alpha", "min-effect"},
		minArgs: 1, maxArgs: 1, argsWhat: "one program name",
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			return dbTrend(st, operands[0], o)
		},
	},
	{
		name: "rm", operands: "ID",
		summary: []string{"remove a run from the store"},
		minArgs: 1, maxArgs: 1, argsWhat: "one run ID",
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			if err := st.Remove(operands[0]); err != nil {
				fmt.Fprintln(os.Stderr, "pperf db:", err)
				return 1
			}
			return 0
		},
	},
	{
		name:     "gc",
		summary:  []string{"delete unreferenced files under the store's runs/ directory"},
		argsWhat: "no arguments",
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			removed, err := st.GC()
			if err != nil {
				fmt.Fprintln(os.Stderr, "pperf db:", err)
				return 1
			}
			for _, name := range removed {
				fmt.Println("removed", name)
			}
			fmt.Printf("%d files removed\n", len(removed))
			return 0
		},
	},
	{
		name: "serve", operands: "ADDR",
		summary: []string{
			"serve the store to db push/pull peers (ADDR like",
			"127.0.0.1:7077; :0 picks a free port); blocks until SIGINT",
		},
		flags:   []string{"addr-file"},
		minArgs: 1, maxArgs: 1, argsWhat: "a listen address",
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			return dbServe(st, operands[0], o.addrFile)
		},
	},
	{
		name: "push", operands: "RUN ADDR",
		summary: []string{
			"stream one stored run to the store served at ADDR",
			"(chunk-resumable; identical content is a no-op)",
		},
		flags:   []string{"sync-faults", "chunk-bytes"},
		minArgs: 2, maxArgs: 2, argsWhat: "a run ID and a peer address",
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			cfg, ok := syncConfig(o.syncFaults, o.chunkBytes)
			if !ok {
				return 2
			}
			return dbPush(st, operands[0], operands[1], cfg)
		},
	},
	{
		name: "pull", operands: "ADDR [RUN|--all]",
		summary: []string{
			"fetch one remote run — or, with --all, every remote run",
			"not already held — into the store under fresh local IDs",
		},
		flags:   []string{"all", "sync-faults", "chunk-bytes"},
		minArgs: 1, maxArgs: 2, argsWhat: "a peer address and optionally a run ID (or --all)",
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			runID := ""
			if len(operands) == 2 {
				runID = operands[1]
			}
			if runID == "--all" || runID == "-all" {
				runID = ""
			} else if runID == "" && !o.pullAll {
				fmt.Fprintln(os.Stderr, "pperf db: pull needs a run ID, or --all to fetch every remote run")
				return 2
			}
			cfg, ok := syncConfig(o.syncFaults, o.chunkBytes)
			if !ok {
				return 2
			}
			return dbPull(st, operands[0], runID, cfg)
		},
	},
}

// The help verb reads the registry it lives in, so it joins in init to
// avoid an initialization cycle.
func init() {
	dbCommands = append(dbCommands, &dbCommand{
		name: "help", operands: "[command]",
		summary: []string{"show usage, or one command's flags and operands"},
		maxArgs: 1, argsWhat: "at most one command name",
		noStore: true,
		run: func(st *perfdb.Store, o *dbOpts, operands []string) int {
			if len(operands) == 0 {
				printDBUsage(os.Stdout)
				return 0
			}
			c := findDBCommand(operands[0])
			if c == nil {
				fmt.Fprintf(os.Stderr, "pperf db: unknown command %q\n", operands[0])
				return 2
			}
			printDBCommandHelp(os.Stdout, c)
			return 0
		},
	})
}

// findDBCommand resolves a verb name against the registry.
func findDBCommand(name string) *dbCommand {
	for _, c := range dbCommands {
		if c.name == name {
			return c
		}
	}
	return nil
}

// registerStore registers the global -store flag.
func registerStore(fs *flag.FlagSet, o *dbOpts) {
	fs.StringVar(&o.store, "store", o.store, "experiment store directory (created if missing)")
}

// printDBUsage renders the registry-driven usage text.
func printDBUsage(w io.Writer) {
	fmt.Fprint(w, "Usage: pperf db -store DIR <command> [flags] [operands]\n\nCommands:\n")
	for _, c := range dbCommands {
		head := c.name
		if c.operands != "" {
			head += " " + c.operands
		}
		fmt.Fprintf(w, "  %-14s %s\n", head, c.summary[0])
		for _, line := range c.summary[1:] {
			fmt.Fprintf(w, "  %-14s %s\n", "", line)
		}
	}
	fmt.Fprint(w, "\nFlags may precede or follow the command; each command accepts only\nits own (`pperf db help <command>` lists them).\n")
}

// printDBCommandHelp renders one verb's synopsis and flags.
func printDBCommandHelp(w io.Writer, c *dbCommand) {
	head := "pperf db -store DIR " + c.name
	if c.noStore {
		head = "pperf db " + c.name
	}
	if c.operands != "" {
		head += " [flags] " + c.operands
	}
	fmt.Fprintf(w, "Usage: %s\n\n", head)
	for _, line := range c.summary {
		fmt.Fprintf(w, "  %s\n", line)
	}
	if len(c.flags) > 0 {
		fmt.Fprint(w, "\nFlags:\n")
		fs := flag.NewFlagSet(c.name, flag.ContinueOnError)
		o := newDBOpts()
		for _, name := range c.flags {
			dbFlagDefs[name](fs, o)
		}
		fs.SetOutput(w)
		fs.PrintDefaults()
	}
}

// dbMain implements `pperf db`: resolve the verb, reject flags the verb
// does not accept (wherever they appeared), then dispatch.
func dbMain(args []string) int {
	o := newDBOpts()

	// First pass: a union FlagSet holding every flag, so the historical
	// flags-before-verb convention keeps parsing. It stops at the verb
	// (the first non-flag argument).
	union := flag.NewFlagSet("pperf db", flag.ContinueOnError)
	union.SetOutput(os.Stderr)
	union.Usage = func() { printDBUsage(os.Stderr) }
	registerStore(union, o)
	for _, def := range dbFlagDefs {
		def(union, o)
	}
	if err := union.Parse(args); err != nil {
		return 2
	}
	rest := union.Args()
	if len(rest) == 0 {
		printDBUsage(os.Stderr)
		return 2
	}
	cmd := findDBCommand(rest[0])
	if cmd == nil {
		fmt.Fprintf(os.Stderr, "pperf db: unknown command %q\n", rest[0])
		printDBUsage(os.Stderr)
		return 2
	}

	// Flags set before the verb must be ones this verb accepts.
	allowed := map[string]bool{"store": true}
	for _, name := range cmd.flags {
		allowed[name] = true
	}
	badFlag := ""
	union.Visit(func(f *flag.Flag) {
		if !allowed[f.Name] {
			badFlag = f.Name
		}
	})
	if badFlag != "" {
		fmt.Fprintf(os.Stderr, "pperf db %s: flag -%s is not accepted by %s (see `pperf db help %s`)\n",
			cmd.name, badFlag, cmd.name, cmd.name)
		return 2
	}

	// Second pass: the verb's own FlagSet over the post-verb arguments.
	// Defaults read the current values, so pre-verb settings carry over;
	// a flag the verb does not accept is now an unknown-flag error.
	vfs := flag.NewFlagSet("pperf db "+cmd.name, flag.ContinueOnError)
	vfs.SetOutput(os.Stderr)
	vfs.Usage = func() { printDBCommandHelp(os.Stderr, cmd) }
	registerStore(vfs, o)
	for _, name := range cmd.flags {
		dbFlagDefs[name](vfs, o)
	}
	if err := vfs.Parse(rest[1:]); err != nil {
		return 2
	}
	operands := vfs.Args()
	if len(operands) < cmd.minArgs || len(operands) > cmd.maxArgs {
		fmt.Fprintf(os.Stderr, "pperf db: %s takes %s\n", cmd.name, cmd.argsWhat)
		return 2
	}
	if o.format != "text" && o.format != "json" {
		fmt.Fprintf(os.Stderr, "pperf db: unknown format %q (want text or json)\n", o.format)
		return 2
	}

	var st *perfdb.Store
	if !cmd.noStore {
		if o.store == "" {
			fmt.Fprintln(os.Stderr, "pperf db: -store is required")
			return 2
		}
		var err error
		st, err = perfdb.Open(o.store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pperf db:", err)
			return 1
		}
	}
	return cmd.run(st, o, operands)
}

// dbAdd ingests one recorded archive, replaying it offline to compute the
// Consultant verdict stored in the index.
func dbAdd(st *perfdb.Store, path, label string) int {
	a, err := perfdb.LoadAny(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	if note := a.TruncationNote(); note != "" {
		fmt.Fprintln(os.Stderr, "pperf db:", note)
	}
	verdict := ""
	if res, err := pperfmark.Replay(a); err != nil {
		fmt.Fprintf(os.Stderr, "pperf db: no verdict (replay failed: %v)\n", err)
	} else if res.PC != nil {
		verdict = res.PC.Export().String()
	}
	m, err := st.AddArchive(a, perfdb.AddMeta{Label: label, Verdict: verdict})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	fmt.Printf("stored %s (%d events, %d bytes compacted)\n", m.ID, m.Events, m.Bytes)
	return 0
}

// dbShow prints one stored run: index entry, verdict, collected series.
func dbShow(st *perfdb.Store, id string, o *dbOpts) int {
	rv, err := st.OpenRun(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	if o.format == "json" {
		return emitJSON(rv.SummaryJSON())
	}
	fmt.Println(rv.Meta.Describe())
	if rv.Meta.Verdict != "" {
		fmt.Printf("consultant: %s\n", rv.Meta.Verdict)
	}
	fmt.Printf("coverage: %.2f, %d processes\n", rv.Coverage(), rv.ProcessCount())
	for _, p := range rv.Pairs() {
		s := rv.SeriesFor(p)
		h := s.Histogram()
		fmt.Printf("  %-22s @ %-40s total=%-12.6g bins=%d @ %v\n",
			p.Metric, p.Focus, h.Total(), h.NumFilled(), h.BinWidth())
	}
	return 0
}

// compareOptions translates the diff flags into the library's options,
// parsing the window endpoints as durations since run start.
func compareOptions(o *dbOpts) (perfdb.CompareOptions, error) {
	opts := perfdb.CompareOptions{
		SinceFault: o.sinceFault,
		Alpha:      o.alpha,
		MinEffect:  o.minEffect,
	}
	parseEdge := func(name, val string) (sim.Time, error) {
		d, err := time.ParseDuration(val)
		if err != nil {
			return 0, fmt.Errorf("bad -%s %q: %v", name, val, err)
		}
		if d < 0 {
			return 0, fmt.Errorf("bad -%s %q: negative", name, val)
		}
		return sim.Time(d), nil
	}
	var err error
	if o.from != "" {
		if opts.Window.From, err = parseEdge("from", o.from); err != nil {
			return opts, err
		}
	}
	if o.to != "" {
		if opts.Window.To, err = parseEdge("to", o.to); err != nil {
			return opts, err
		}
	}
	return opts, nil
}

// dbDiff renders the cross-run comparison; a significant regression makes
// the exit status 3 so scripts (and `make perfdb-golden`) can gate on it.
func dbDiff(st *perfdb.Store, baseID, newID string, o *dbOpts) int {
	base, err := st.OpenRun(baseID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	neu, err := st.OpenRun(newID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	opts, err := compareOptions(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 2
	}
	rep, err := perfdb.Compare(base, neu, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	if o.format == "json" {
		if code := emitJSON(rep.RenderJSON()); code != 0 {
			return code
		}
	} else {
		fmt.Print(rep.Render())
	}
	if len(rep.Regressions()) > 0 {
		return 3
	}
	return 0
}

// dbTrend fits every series of a program's stored runs against the run
// index; any DRIFTING series makes the exit status 3.
func dbTrend(st *perfdb.Store, program string, o *dbOpts) int {
	metas := st.RunsFor(program)
	if len(metas) < 3 {
		fmt.Fprintf(os.Stderr, "pperf db: trend needs at least 3 stored runs of %q, have %d\n",
			program, len(metas))
		return 1
	}
	views := make([]*perfdb.RunView, 0, len(metas))
	for _, m := range metas {
		rv, err := st.OpenRun(m.ID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pperf db:", err)
			return 1
		}
		views = append(views, rv)
	}
	rep, err := perfdb.Trend(views, perfdb.TrendOptions{Alpha: o.alpha, MinEffect: o.minEffect})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	if o.format == "json" {
		if code := emitJSON(rep.RenderJSON()); code != 0 {
			return code
		}
	} else {
		fmt.Print(rep.Render())
	}
	if len(rep.Drifting()) > 0 {
		return 3
	}
	return 0
}

// emitJSON writes one rendered document to stdout.
func emitJSON(doc []byte, err error) int {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	os.Stdout.Write(doc)
	return 0
}

// syncConfig builds the push/pull client configuration from the CLI
// flags, parsing the optional fault plan.
func syncConfig(faultSpec string, chunkBytes int) (perfdb.SyncConfig, bool) {
	cfg := perfdb.DefaultSyncConfig()
	cfg.ChunkBytes = chunkBytes
	if faultSpec != "" {
		plan, err := faults.Parse(faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pperf db:", err)
			return cfg, false
		}
		cfg.Faults = plan
		cfg.Seed = plan.Seed
	}
	return cfg, true
}

// dbServe serves the store until SIGINT/SIGTERM.
func dbServe(st *perfdb.Store, addr, addrFile string) int {
	srv, err := perfdb.Serve(st, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	fmt.Printf("pperf db: serving store %s at %s\n", st.Dir(), srv.Addr())
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pperf db:", err)
			srv.Close()
			return 1
		}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	return 0
}

// dbPush streams one stored run to a served peer store.
func dbPush(st *perfdb.Store, runID, addr string, cfg perfdb.SyncConfig) int {
	res, err := perfdb.Push(st, runID, addr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	switch {
	case res.Deduped:
		fmt.Printf("peer already has %s as %s (identical content)\n", res.RunID, res.RemoteID)
	default:
		resumed := ""
		if res.ResumedAt > 0 {
			resumed = fmt.Sprintf(", resumed at byte %d", res.ResumedAt)
		}
		fmt.Printf("pushed %s -> %s (%d bytes%s)\n", res.RunID, res.RemoteID, res.Bytes, resumed)
	}
	if res.Warning != "" {
		fmt.Fprintln(os.Stderr, "pperf db: warning:", res.Warning)
	}
	if res.Stats.Retries > 0 {
		fmt.Fprintf(os.Stderr, "pperf db: sync channel: %d frames, %d retries, %d reconnects\n",
			res.Stats.Frames, res.Stats.Retries, res.Stats.Reconnects)
	}
	return 0
}

// dbPull fetches one (or every) remote run into the local store.
func dbPull(st *perfdb.Store, addr, runID string, cfg perfdb.SyncConfig) int {
	results, stats, err := perfdb.Pull(st, addr, runID, cfg)
	for _, r := range results {
		switch {
		case r.Skipped:
			fmt.Printf("already have %s as %s (identical content)\n", r.RemoteID, r.LocalID)
		case r.LocalID != "":
			resumed := ""
			if r.ResumedAt > 0 {
				resumed = fmt.Sprintf(", resumed at byte %d", r.ResumedAt)
			}
			fmt.Printf("pulled %s -> %s (%d bytes%s)\n", r.RemoteID, r.LocalID, r.Bytes, resumed)
		}
		if r.Warning != "" {
			fmt.Fprintln(os.Stderr, "pperf db: warning:", r.Warning)
		}
	}
	if stats != nil && stats.Retries > 0 {
		fmt.Fprintf(os.Stderr, "pperf db: sync channel: %d frames, %d retries, %d reconnects\n",
			stats.Frames, stats.Retries, stats.Reconnects)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	return 0
}
