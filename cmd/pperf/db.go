package main

import (
	"flag"
	"fmt"
	"os"

	"pperf/internal/perfdb"
	"pperf/internal/pperfmark"
)

const dbUsage = `Usage: pperf db -store DIR <command>

Commands:
  add FILE     ingest a recorded archive (either format) into the store,
               replaying it once to stamp the Consultant verdict
  list         list stored runs
  show ID      show one run's metadata and collected series
  diff A B     compare two stored runs (A = baseline); exits 3 when a
               significant regression is found
  rm ID        remove a run from the store
  gc           delete unreferenced files under the store's runs/ directory

Options:
`

// dbMain implements the `pperf db` subcommand over a perfdb store.
func dbMain(args []string) int {
	fs := flag.NewFlagSet("pperf db", flag.ExitOnError)
	storeDir := fs.String("store", "", "experiment store directory (created if missing)")
	label := fs.String("label", "", "label for the run being added (add only)")
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, dbUsage)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "pperf db: -store is required")
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	st, err := perfdb.Open(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	verb, operands := rest[0], rest[1:]
	need := func(n int, what string) bool {
		if len(operands) != n {
			fmt.Fprintf(os.Stderr, "pperf db: %s takes %s\n", verb, what)
			return false
		}
		return true
	}
	switch verb {
	case "add":
		if !need(1, "one archive file") {
			return 2
		}
		return dbAdd(st, operands[0], *label)
	case "list":
		if !need(0, "no arguments") {
			return 2
		}
		for _, m := range st.Runs() {
			fmt.Println(m.Describe())
			if m.Verdict != "" {
				fmt.Printf("       consultant: %s\n", m.Verdict)
			}
		}
		return 0
	case "show":
		if !need(1, "one run ID") {
			return 2
		}
		return dbShow(st, operands[0])
	case "diff":
		if !need(2, "two run IDs (baseline first)") {
			return 2
		}
		return dbDiff(st, operands[0], operands[1])
	case "rm":
		if !need(1, "one run ID") {
			return 2
		}
		if err := st.Remove(operands[0]); err != nil {
			fmt.Fprintln(os.Stderr, "pperf db:", err)
			return 1
		}
		return 0
	case "gc":
		if !need(0, "no arguments") {
			return 2
		}
		removed, err := st.GC()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pperf db:", err)
			return 1
		}
		for _, name := range removed {
			fmt.Println("removed", name)
		}
		fmt.Printf("%d files removed\n", len(removed))
		return 0
	default:
		fmt.Fprintf(os.Stderr, "pperf db: unknown command %q\n", verb)
		fs.Usage()
		return 2
	}
}

// dbAdd ingests one recorded archive, replaying it offline to compute the
// Consultant verdict stored in the index.
func dbAdd(st *perfdb.Store, path, label string) int {
	a, err := perfdb.LoadAny(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	if note := a.TruncationNote(); note != "" {
		fmt.Fprintln(os.Stderr, "pperf db:", note)
	}
	verdict := ""
	if res, err := pperfmark.Replay(a); err != nil {
		fmt.Fprintf(os.Stderr, "pperf db: no verdict (replay failed: %v)\n", err)
	} else if res.PC != nil {
		verdict = res.PC.Export().String()
	}
	m, err := st.AddArchive(a, perfdb.AddMeta{Label: label, Verdict: verdict})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	fmt.Printf("stored %s (%d events, %d bytes compacted)\n", m.ID, m.Events, m.Bytes)
	return 0
}

// dbShow prints one stored run: index entry, verdict, collected series.
func dbShow(st *perfdb.Store, id string) int {
	rv, err := st.OpenRun(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	fmt.Println(rv.Meta.Describe())
	if rv.Meta.Verdict != "" {
		fmt.Printf("consultant: %s\n", rv.Meta.Verdict)
	}
	fmt.Printf("coverage: %.2f, %d processes\n", rv.Coverage(), rv.ProcessCount())
	for _, p := range rv.Pairs() {
		s := rv.SeriesFor(p)
		h := s.Histogram()
		fmt.Printf("  %-22s @ %-40s total=%-12.6g bins=%d @ %v\n",
			p.Metric, p.Focus, h.Total(), h.NumFilled(), h.BinWidth())
	}
	return 0
}

// dbDiff renders the cross-run comparison; a significant regression makes
// the exit status 3 so scripts (and `make perfdb-golden`) can gate on it.
func dbDiff(st *perfdb.Store, baseID, newID string) int {
	base, err := st.OpenRun(baseID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	neu, err := st.OpenRun(newID)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf db:", err)
		return 1
	}
	rep := perfdb.Diff(base, neu)
	fmt.Print(rep.Render())
	if len(rep.Regressions()) > 0 {
		return 3
	}
	return 0
}
