// Command pperf runs one PPerfMark program under the full performance tool
// (daemons, front end, Performance Consultant) and prints what the tool
// found: the condensed Consultant output, the resource hierarchy, and any
// verification counters.
//
// Usage:
//
//	pperf -prog small-messages -impl lam
//	pperf -prog winscpw-sync -impl mpich2 -iterations 500
//	pperf -prog small-messages -record run.pparch
//	pperf -replay run.pparch
//	pperf -replay run.pparch -what-if-sync 0.05
//	pperf -prog small-messages -db ./experiments -db-label baseline
//	pperf db -store ./experiments diff r0001 r0002
//	pperf db -store ./experiments diff -since-fault -format=json r0001 r0002
//	pperf db -store ./experiments trend -alpha=0.1 big-message
//	pperf db help trend
//	pperf -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pperf/internal/consultant"
	"pperf/internal/core"
	"pperf/internal/daemon"
	"pperf/internal/faults"
	"pperf/internal/mpi"
	"pperf/internal/pcl"
	"pperf/internal/perfdb"
	"pperf/internal/pperfmark"
	"pperf/internal/trace"
	"pperf/internal/wire"
)

func main() {
	// `pperf db ...` manages an experiment store (see PERFDB.md).
	if len(os.Args) > 1 && os.Args[1] == "db" {
		os.Exit(dbMain(os.Args[2:]))
	}
	var (
		prog      = flag.String("prog", "", "PPerfMark program to run (see -list)")
		implName  = flag.String("impl", "lam", "MPI implementation personality: lam | mpich | mpich2 | reference")
		list      = flag.Bool("list", false, "list available programs and exit")
		iters     = flag.Int("iterations", 0, "override the program's iteration count")
		procs     = flag.Int("np", 0, "override the process count")
		waste     = flag.Int("ttw", 0, "override TIMETOWASTE")
		hier      = flag.Bool("hierarchy", false, "print the final resource hierarchy")
		judge     = flag.Bool("judge", true, "judge the findings against the paper's expectations")
		spawnVia  = flag.String("spawn", "intercept", "spawn support method: intercept | attach")
		seed      = flag.Uint64("seed", 0, "simulation seed")
		pclFile   = flag.String("pcl", "", "run from a Paradyn Configuration Language file instead")
		faultSpec = flag.String("faults", "", "fault-injection plan, e.g. 't=2s kill-node node1' (see FAULTS.md)")
		traceOut  = flag.String("trace", "", "write the merged event trace to this file (see TRACING.md)")
		traceFmt  = flag.String("trace-format", "perfetto", "trace file format: perfetto (Chrome trace-event JSON) | csv")
		critPath  = flag.Bool("critical-path", false, "trace the run and print the critical-path analysis")
		record    = flag.String("record", "", "record the session's analysis-plane event stream to this archive (see REPLAY.md)")
		replay    = flag.String("replay", "", "replay a recorded session archive offline instead of running a program")
		dbDir     = flag.String("db", "", "record the run straight into this experiment store (see PERFDB.md)")
		dbLabel   = flag.String("db-label", "", "label for the stored run (with -db)")
		wifSync   = flag.Float64("what-if-sync", 0, "replay only: override the recorded SyncWaitingTime threshold")
		wifIO     = flag.Float64("what-if-io", 0, "replay only: override the recorded IOBlockingTime threshold")
		wifCPU    = flag.Float64("what-if-cpu", 0, "replay only: override the recorded CPUbound threshold")
		wireStats = flag.Bool("transport-stats", false, "print one wire-plane counter summary line per channel after the run")
	)
	flag.Parse()

	whatIf := pperfmark.ReplayOptions{
		SyncThreshold: *wifSync,
		IOThreshold:   *wifIO,
		CPUThreshold:  *wifCPU,
	}
	if whatIf != (pperfmark.ReplayOptions{}) && *replay == "" {
		fmt.Fprintln(os.Stderr, "pperf: -what-if-* flags only apply to -replay (the live run's thresholds are set by PCL or defaults)")
		os.Exit(2)
	}

	if *replay != "" {
		if *record != "" || *dbDir != "" {
			fmt.Fprintln(os.Stderr, "pperf: -record/-db and -replay are mutually exclusive")
			os.Exit(2)
		}
		// LoadAny reads both archive formats: the flat v1 .pparch and the
		// chunked compacted form -record and the experiment store write.
		a, err := perfdb.LoadAny(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pperf:", err)
			os.Exit(1)
		}
		if note := a.TruncationNote(); note != "" {
			fmt.Fprintln(os.Stderr, "pperf:", note)
		}
		res, err := pperfmark.ReplayWith(a, whatIf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pperf:", err)
			os.Exit(1)
		}
		printResult(res, *hier, *judge, *critPath, *traceOut, *traceFmt)
		return
	}

	if *pclFile != "" {
		if err := runFromPCL(*pclFile); err != nil {
			fmt.Fprintln(os.Stderr, "pperf:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("MPI-1 programs (Table 2):")
		for _, n := range pperfmark.MPI1Names() {
			fmt.Printf("  %-18s %s\n", n, pperfmark.Get(n).Description)
		}
		fmt.Println("MPI-2 programs (Table 3):")
		for _, n := range pperfmark.MPI2Names() {
			fmt.Printf("  %-18s %s\n", n, pperfmark.Get(n).Description)
		}
		return
	}
	if *prog == "" {
		fmt.Fprintln(os.Stderr, "pperf: -prog is required (try -list)")
		os.Exit(2)
	}
	impl, err := parseImpl(*implName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pperf:", err)
		os.Exit(2)
	}
	method := daemon.SpawnIntercept
	if *spawnVia == "attach" {
		method = daemon.SpawnAttach
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		plan, err = faults.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pperf:", err)
			os.Exit(2)
		}
	}
	if *traceFmt != "perfetto" && *traceFmt != "csv" {
		fmt.Fprintf(os.Stderr, "pperf: unknown -trace-format %q (perfetto | csv)\n", *traceFmt)
		os.Exit(2)
	}
	var tcfg *trace.Config
	if *traceOut != "" || *critPath {
		tcfg = &trace.Config{}
	}

	opt := pperfmark.RunOptions{
		Impl:  impl,
		Seed:  *seed,
		Spawn: method,
		Params: pperfmark.Params{
			Iterations:  *iters,
			Procs:       *procs,
			TimeToWaste: *waste,
		},
		Faults: plan,
		Trace:  tcfg,
	}
	if *record != "" && *dbDir != "" {
		fmt.Fprintln(os.Stderr, "pperf: -record and -db are mutually exclusive (the store holds the recording)")
		os.Exit(2)
	}
	// Recording streams through the chunked writer in both cases: events
	// land on disk as the run produces them instead of accumulating in
	// memory until exit.
	var (
		rec   *perfdb.StreamRecorder
		store *perfdb.Store
	)
	if *record != "" {
		var err error
		if rec, err = perfdb.NewStreamRecorder(*record); err != nil {
			fmt.Fprintln(os.Stderr, "pperf:", err)
			os.Exit(1)
		}
		opt.Record = rec
	}
	if *dbDir != "" {
		var err error
		if store, err = perfdb.Open(*dbDir); err != nil {
			fmt.Fprintln(os.Stderr, "pperf:", err)
			os.Exit(1)
		}
		if rec, err = store.NewRecorder(); err != nil {
			fmt.Fprintln(os.Stderr, "pperf:", err)
			os.Exit(1)
		}
		opt.Record = rec
	}
	res, err := pperfmark.Run(*prog, opt)
	if err != nil {
		if store != nil && rec != nil {
			store.Discard(rec) // abort the recording and release its reservation
		} else if rec != nil {
			rec.Abort()
		}
		fmt.Fprintln(os.Stderr, "pperf:", err)
		os.Exit(1)
	}
	switch {
	case store != nil:
		verdict := ""
		if res.PC != nil {
			verdict = res.PC.Export().String()
		}
		m, warning, err := store.Commit(rec, perfdb.AddMeta{Label: *dbLabel, Verdict: verdict})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pperf:", err)
			os.Exit(1)
		}
		if warning != "" {
			fmt.Fprintln(os.Stderr, "pperf: warning:", warning)
		}
		fmt.Fprintf(os.Stderr, "pperf: run stored as %s in %s (%d events, %d bytes)\n",
			m.ID, store.Dir(), m.Events, m.Bytes)
	case rec != nil:
		if err := rec.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pperf:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pperf: session recorded to %s (%d events)\n", *record, rec.EventCount())
	}
	printResult(res, *hier, *judge, *critPath, *traceOut, *traceFmt)
	if *wireStats {
		printWireStats(res)
	}
}

// printWireStats renders the session's per-channel wire.Stats — one uniform
// summary line per channel in place of the three bespoke counter sets the
// transports used to keep.
func printWireStats(res *pperfmark.Result) {
	if res.Session == nil {
		return
	}
	stats := res.Session.WireStats()
	chans := make([]string, 0, len(stats))
	for ch := range stats {
		chans = append(chans, ch)
	}
	// Fixed channel order first (ctl, bulk, sync), anything else after.
	rank := map[string]int{wire.ChanCtl: 0, wire.ChanBulk: 1, wire.ChanSync: 2}
	sort.Slice(chans, func(i, j int) bool {
		ri, iOK := rank[chans[i]]
		rj, jOK := rank[chans[j]]
		switch {
		case iOK && jOK:
			return ri < rj
		case iOK:
			return true
		case jOK:
			return false
		}
		return chans[i] < chans[j]
	})
	for _, ch := range chans {
		fmt.Printf("transport %s: %s\n", ch, stats[ch].Summary())
	}
}

// printResult renders a run's findings. It reads everything through the
// Result's DataSource, so a live run and a replayed archive print through
// the identical path — the replay acceptance bar is byte-equal output.
func printResult(res *pperfmark.Result, hier, judge, critPath bool, traceOut, traceFmt string) {
	if res.Unsupported != nil {
		fmt.Printf("%s under %s: %v\n", res.Program, res.Impl, res.Unsupported)
		return
	}

	fmt.Printf("%s under %s — virtual runtime %v, %d probe executions\n\n",
		res.Program, res.Impl, res.RunTime, res.ProbeExecs)
	if len(res.FaultLog) > 0 {
		fmt.Println("Injected faults:")
		for _, ev := range res.FaultLog {
			fmt.Println("  *", ev)
		}
		fmt.Printf("Data coverage: %.2f\n\n", res.Coverage)
	}
	fmt.Println("Performance Consultant (condensed):")
	fmt.Print(res.PC.Render())

	if hier {
		fmt.Println("\nResource hierarchy:")
		fmt.Print(res.Source.Hierarchy().Render())
	}
	if traceOut != "" || critPath {
		if res.Timeline == nil {
			fmt.Fprintln(os.Stderr, "pperf: no trace in this session (replayed archive was recorded without -trace/-critical-path)")
			os.Exit(1)
		}
	}
	if traceOut != "" {
		if err := writeTrace(traceOut, traceFmt, res.Timeline, res.Source.CounterTracks()); err != nil {
			fmt.Fprintln(os.Stderr, "pperf:", err)
			os.Exit(1)
		}
		fmt.Printf("\nTrace written to %s (%s format, %d shards; spans lost: %d ring-evicted, %d outbox-evicted, %d undelivered)\n",
			traceOut, traceFmt, res.Timeline.Shards(),
			res.Timeline.Dropped(), res.Timeline.OutboxLost(), res.Timeline.Undelivered())
	}
	if critPath {
		cp := trace.Analyze(res.Timeline)
		fmt.Println()
		fmt.Print(cp.Render())
	}
	if judge {
		v := pperfmark.Judge(res)
		verdict := "Pass"
		if !v.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("\nJudgement vs the paper: %s (paper reports %s)\n", verdict, v.PaperResult)
		for _, d := range v.Details {
			fmt.Println("  +", d)
		}
		for _, p := range v.Problems {
			fmt.Println("  -", p)
		}
	}
}

// runFromPCL drives the tool from a PCL configuration: the daemon
// definition's mpi_implementation attribute picks the personality (§4.1),
// tunable constants configure the Performance Consultant (§5.1.6), embedded
// MDL extends the metric library, and each process block's mpirun command
// line is parsed with the implementation's placement notation (§4.1.2).
func runFromPCL(path string) error {
	text, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cfg, err := pcl.Parse(string(text))
	if err != nil {
		return err
	}
	if len(cfg.Processes) == 0 {
		return fmt.Errorf("PCL file declares no process blocks")
	}
	for _, pr := range cfg.Processes {
		opts, err := core.OptionsFromPCL(cfg, pr.Daemon, core.Options{Nodes: 4, CPUsPerNode: 2})
		if err != nil {
			return err
		}
		s, err := core.NewSession(opts)
		if err != nil {
			return err
		}
		// All suite programs are available to PCL process commands.
		for _, name := range pperfmark.Names() {
			p, _, err := pperfmark.Program(name, pperfmark.Params{})
			if err != nil {
				return err
			}
			s.Register(name, p)
		}
		if err := s.LaunchMpirun(pr.Command); err != nil {
			s.Close()
			return fmt.Errorf("process %s: %w", pr.Name, err)
		}
		pc := consultant.New(s.FE, s.Eng, core.ConsultantConfigFromPCL(cfg))
		if err := pc.Start(); err != nil {
			s.Close()
			return err
		}
		if err := s.Run(); err != nil {
			s.Close()
			return err
		}
		fmt.Printf("process %s (%q) under %s:\n", pr.Name, pr.Command, opts.Impl)
		fmt.Print(pc.Render())
		s.Close()
	}
	return nil
}

// writeTrace exports the merged timeline in the requested format. The
// Perfetto export also carries the front end's folding histograms as
// counter tracks next to the span tracks.
func writeTrace(path, format string, tl *trace.Timeline, counters []trace.CounterTrack) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		err = trace.WriteCSV(f, tl)
	default:
		err = trace.WriteChromeWith(f, tl, counters)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parseImpl(name string) (mpi.ImplKind, error) {
	switch strings.ToLower(name) {
	case "lam", "lam/mpi":
		return mpi.LAM, nil
	case "mpich":
		return mpi.MPICH, nil
	case "mpich2":
		return mpi.MPICH2, nil
	case "reference", "ref":
		return mpi.Reference, nil
	default:
		return 0, fmt.Errorf("unknown implementation %q", name)
	}
}
