package pperf

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (each regenerates the artifact through internal/experiments and
// fails if the paper's qualitative shape is not reproduced), the ablation
// benches DESIGN.md calls out, and microbenchmarks of the substrate layers.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The figure benches are macro-benchmarks: one iteration regenerates the
// whole artifact, so ns/op is the cost of reproducing that figure.

import (
	"testing"

	"pperf/internal/cluster"
	"pperf/internal/daemon"
	"pperf/internal/experiments"
	"pperf/internal/faults"
	"pperf/internal/mdl"
	"pperf/internal/metric"
	"pperf/internal/mpi"
	"pperf/internal/pperfmark"
	"pperf/internal/probe"
	"pperf/internal/resource"
	"pperf/internal/sim"
	"pperf/internal/trace"
)

// benchExperiment regenerates one of the paper's artifacts per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatalf("%s did not reproduce: %v", id, res.Notes)
		}
	}
}

// --- tables ---------------------------------------------------------------

func BenchmarkTable1RMAMetrics(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable2PPerfMarkMPI1(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3PPerfMarkMPI2(b *testing.B) { benchExperiment(b, "table3") }

// --- figures ----------------------------------------------------------------

func BenchmarkFigure1RMASyncPatterns(b *testing.B)          { benchExperiment(b, "fig1") }
func BenchmarkFigure2MDLCompile(b *testing.B)               { benchExperiment(b, "fig2") }
func BenchmarkFigure3SmallMessagesPC(b *testing.B)          { benchExperiment(b, "fig3") }
func BenchmarkFigure4SmallMessagesBytes(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFigure5BigMessagePC(b *testing.B)             { benchExperiment(b, "fig5") }
func BenchmarkFigure6BigMessageBytes(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFigure7WrongWayPC(b *testing.B)               { benchExperiment(b, "fig7") }
func BenchmarkFigure8WrongWayBytes(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkFigure9RandomBarrierPC(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFigure10IntensiveServerPC(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFigure11IntensiveServerHist(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFigure12JumpshotIntensiveServer(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFigure14DiffuseProcedurePC(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFigure15DiffuseProcedureHist(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFigure16JumpshotDiffuse(b *testing.B)         { benchExperiment(b, "fig16") }
func BenchmarkFigure17JumpshotRandomBarrier(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkFigure18RandomBarrierSync(b *testing.B)       { benchExperiment(b, "fig18") }
func BenchmarkFigure19GprofHotProcedure(b *testing.B)       { benchExperiment(b, "fig19") }
func BenchmarkFigure20HotProcedureSstwodPC(b *testing.B)    { benchExperiment(b, "fig20") }
func BenchmarkFigure21WinscpwsyncPC(b *testing.B)           { benchExperiment(b, "fig21") }
func BenchmarkFigure22OnedPC(b *testing.B)                  { benchExperiment(b, "fig22") }
func BenchmarkFigure23SpawnResourceHierarchy(b *testing.B)  { benchExperiment(b, "fig23") }
func BenchmarkFigure24SpawnPC(b *testing.B)                 { benchExperiment(b, "fig24") }
func BenchmarkPrestaComparison(b *testing.B)                { benchExperiment(b, "presta") }

// --- ablations (DESIGN.md) ---------------------------------------------------

// BenchmarkAblationEagerThreshold compares big-message-style exchange with
// the protocol switch above vs below the message size: rendezvous couples
// the sender to the receiver and dominates the runtime shape.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	const msgBytes = 100000
	runWith := func(threshold int) sim.Time {
		eng := sim.NewEngine(1)
		impl := mpi.NewImpl(mpi.LAM)
		impl.Cost.EagerThreshold = threshold
		w := mpi.NewWorld(eng, cluster.DefaultSpec(2, 1), impl)
		w.Register("x", func(r *mpi.Rank, _ []string) {
			c := r.World()
			other := 1 - r.Rank()
			for i := 0; i < 200; i++ {
				if r.Rank() == 0 {
					c.Send(r, nil, msgBytes, mpi.Byte, other, 0)
					c.Recv(r, nil, msgBytes, mpi.Byte, other, 0)
				} else {
					c.Recv(r, nil, msgBytes, mpi.Byte, other, 0)
					c.Send(r, nil, msgBytes, mpi.Byte, other, 0)
				}
				r.Compute(time500us)
			}
		})
		if _, err := w.LaunchN("x", 2, nil); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		return eng.Now()
	}
	var rendezvous, eager sim.Time
	for i := 0; i < b.N; i++ {
		rendezvous = runWith(64 * 1024) // below message size → handshake
		eager = runWith(256 * 1024)     // above → fire-and-forget
	}
	if eager >= rendezvous {
		b.Fatalf("eager (%v) should beat rendezvous (%v) for this shape", eager, rendezvous)
	}
	b.ReportMetric(rendezvous.Seconds()/eager.Seconds(), "rendezvous/eager-runtime")
}

const time500us = 500 * sim.Microsecond

// BenchmarkAblationBinFolding compares the fixed-memory folding histogram
// against an unfolded one: same totals, bounded memory, coarser bins.
func BenchmarkAblationBinFolding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		folding := metric.NewHistogram(100, 200*sim.Millisecond)
		wide := metric.NewHistogram(100000, 200*sim.Millisecond)
		for t := 0; t < 50000; t++ {
			at := sim.Time(t) * sim.Time(100*sim.Millisecond)
			folding.Add(at, 1)
			wide.Add(at, 1)
		}
		if folding.Total() != wide.Total() {
			b.Fatalf("folding lost mass: %v vs %v", folding.Total(), wide.Total())
		}
		if folding.Folds() == 0 {
			b.Fatal("expected folds")
		}
		b.ReportMetric(float64(folding.Folds()), "folds")
		b.ReportMetric(folding.BinWidth().Seconds(), "final-bin-s")
	}
}

// BenchmarkAblationSpawnMethods measures the spawn-operation inflation of
// the intercept method versus attach (§4.2.2).
func BenchmarkAblationSpawnMethods(b *testing.B) {
	measure := func(method daemon.SpawnMethod) sim.Duration {
		res, err := pperfmark.Run("spawncount", pperfmark.RunOptions{
			Impl: mpi.LAM, Spawn: method, DisablePC: true,
			Params: pperfmark.Params{Children: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		return sim.Duration(res.RunTime)
	}
	var intercept, attach sim.Duration
	for i := 0; i < b.N; i++ {
		intercept = measure(daemon.SpawnIntercept)
		attach = measure(daemon.SpawnAttach)
	}
	if intercept <= attach {
		b.Fatalf("intercept (%v) should inflate the spawn vs attach (%v)", intercept, attach)
	}
	b.ReportMetric((intercept-attach).Seconds()*1000, "intercept-inflation-ms")
}

// BenchmarkAblationProbeOverhead measures instrumentation perturbation: the
// virtual runtime of an instrumented run versus an uninstrumented one.
func BenchmarkAblationProbeOverhead(b *testing.B) {
	runWith := func(perProbe sim.Duration, instrument bool) sim.Time {
		eng := sim.NewEngine(1)
		w := mpi.NewWorld(eng, cluster.DefaultSpec(2, 1), mpi.NewImpl(mpi.LAM))
		w.Register("x", func(r *mpi.Rank, _ []string) {
			r.Probes().PerProbeCost = perProbe
			c := r.World()
			for i := 0; i < 5000; i++ {
				if r.Rank() == 0 {
					c.Send(r, nil, 4, mpi.Byte, 1, 0)
				} else {
					c.Recv(r, nil, 4, mpi.Byte, 0, 0)
				}
			}
		})
		if _, err := w.LaunchN("x", 2, nil); err != nil {
			b.Fatal(err)
		}
		if instrument {
			for _, r := range w.Ranks() {
				cm := mdl.StdLib().Metric("msgs_sent")
				if _, err := cm.Instantiate(benchTarget{r}, resource.WholeProgram()); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		return eng.Now()
	}
	var bare, instrumented sim.Time
	for i := 0; i < b.N; i++ {
		bare = runWith(0, false)
		instrumented = runWith(2*sim.Microsecond, true)
	}
	if instrumented <= bare {
		b.Fatal("instrumentation should perturb the run")
	}
	b.ReportMetric((instrumented.Seconds()/bare.Seconds()-1)*100, "perturbation-%")
}

// benchTarget adapts a Rank for direct metric instantiation in benches.
type benchTarget struct{ r *mpi.Rank }

func (t benchTarget) Probes() *probe.Process            { return t.r.Probes() }
func (t benchTarget) FunctionsOfModule(string) []string { return nil }
func (t benchTarget) WallNow() sim.Time                 { return t.r.Now() }
func (t benchTarget) CPUNow() sim.Duration              { return t.r.CPUTime() }
func (t benchTarget) SystemNow() sim.Duration           { return t.r.SystemTime() }

// BenchmarkAblationPCThreshold reproduces the diffuse-procedure threshold
// sensitivity: found at 0.2, missed at the default 0.3 (§5.1.6).
func BenchmarkAblationPCThreshold(b *testing.B) {
	runAt := func(threshold float64) bool {
		cfg := pperfmark.ScaledPCConfig()
		cfg.CPUThreshold = threshold
		res, err := pperfmark.Run("diffuse-procedure", pperfmark.RunOptions{
			Impl: mpi.LAM, PC: &cfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.PC.HasFinding("CPUBound", "bottleneckProcedure")
	}
	for i := 0; i < b.N; i++ {
		if runAt(0.3) {
			b.Fatal("default threshold should miss the 25% bottleneck")
		}
		if !runAt(0.2) {
			b.Fatal("0.2 threshold should find the bottleneck")
		}
	}
}

// --- fault-injection overhead ------------------------------------------------

// benchFaultRun executes one suite program under the tool with the given
// fault plan (nil = fault hooks fully cold) and returns the virtual runtime.
func benchFaultRun(b *testing.B, plan *faults.Plan) sim.Time {
	b.Helper()
	res, err := pperfmark.Run("random-barrier", pperfmark.RunOptions{
		Impl: mpi.LAM, DisablePC: true, Faults: plan,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.RunTime
}

// BenchmarkFaultsDisabled is the baseline cost of carrying the fault
// subsystem without a plan: the nil network overlay, the daemon's
// direct-send fast path, and heartbeats off. Its ns/op should be
// indistinguishable from a build without fault support.
func BenchmarkFaultsDisabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFaultRun(b, nil)
	}
}

// BenchmarkFaultsArmedIdle arms an empty plan — heartbeats, liveness monitor
// and network overlay live, but no fault ever fires — and checks that the
// machinery does not perturb the simulated application at all: the virtual
// runtime must equal the hooks-cold run's exactly.
func BenchmarkFaultsArmedIdle(b *testing.B) {
	var cold, idle sim.Time
	for i := 0; i < b.N; i++ {
		cold = benchFaultRun(b, nil)
		idle = benchFaultRun(b, faults.New())
	}
	if cold != idle {
		b.Fatalf("armed-but-idle fault machinery perturbed the run: %v vs %v", idle, cold)
	}
}

// --- tracing overhead --------------------------------------------------------

// benchTraceRun executes one suite program under the tool with tracing armed
// or cold (nil config) and returns the virtual runtime.
func benchTraceRun(b *testing.B, cfg *trace.Config) sim.Time {
	b.Helper()
	res, err := pperfmark.Run("random-barrier", pperfmark.RunOptions{
		Impl: mpi.LAM, DisablePC: true, Trace: cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.RunTime
}

// BenchmarkTraceDisabled is the baseline cost of carrying the trace
// subsystem without arming it: every hook site is a nil pointer check. Its
// ns/op should be indistinguishable from a build without trace support.
func BenchmarkTraceDisabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchTraceRun(b, nil)
	}
}

// BenchmarkTraceArmed records the full span stream and checks the guarantee
// that tracing never perturbs the simulated application: the virtual runtime
// must equal the hooks-cold run's exactly.
func BenchmarkTraceArmed(b *testing.B) {
	var cold, armed sim.Time
	for i := 0; i < b.N; i++ {
		cold = benchTraceRun(b, nil)
		armed = benchTraceRun(b, &trace.Config{})
	}
	if cold != armed {
		b.Fatalf("armed tracing perturbed the run: %v vs %v", armed, cold)
	}
}

// --- substrate microbenchmarks ----------------------------------------------

// BenchmarkEngineDispatch measures the raw coroutine handoff cost.
func BenchmarkEngineDispatch(b *testing.B) {
	eng := sim.NewEngine(1)
	n := 0
	eng.StartProc("p", func(p *sim.Proc) {
		for {
			p.Sleep(sim.Microsecond)
			n++
		}
	})
	b.ResetTimer()
	eng.RunFor(sim.Duration(b.N+2) * sim.Microsecond)
	b.StopTimer()
	if n < b.N {
		b.Fatalf("ticks %d < N %d", n, b.N)
	}
}

// BenchmarkSendRecvPerOp measures the simulated cost of one eager message.
func BenchmarkSendRecvPerOp(b *testing.B) {
	eng := sim.NewEngine(1)
	w := mpi.NewWorld(eng, cluster.DefaultSpec(2, 1), mpi.NewImpl(mpi.LAM))
	iters := b.N
	w.Register("x", func(r *mpi.Rank, _ []string) {
		c := r.World()
		for i := 0; i < iters; i++ {
			if r.Rank() == 0 {
				c.Send(r, nil, 8, mpi.Byte, 1, 0)
			} else {
				c.Recv(r, nil, 8, mpi.Byte, 0, 0)
			}
		}
	})
	if _, err := w.LaunchN("x", 2, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProbeDispatch measures an instrumented function call.
func BenchmarkProbeDispatch(b *testing.B) {
	clk := &fixedClock{}
	p := probe.NewProcess("bench", clk)
	f := &probe.Function{Name: "f", Module: "m"}
	count := 0
	p.Insert("f", probe.Entry, probe.Append, func(*probe.Event) { count++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Enter(f)
		p.Leave(f)
	}
	if count != b.N {
		b.Fatal("probe miscount")
	}
}

type fixedClock struct{}

func (fixedClock) Now() sim.Time              { return 0 }
func (fixedClock) CPUTime() sim.Duration      { return 0 }
func (fixedClock) AddOverhead(d sim.Duration) {}

// BenchmarkMDLCompile measures compiling the full standard library.
func BenchmarkMDLCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mdl.CompileSource(mdl.StdSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramAdd measures histogram ingestion including folds.
func BenchmarkHistogramAdd(b *testing.B) {
	h := metric.NewHistogram(1000, 200*sim.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(sim.Time(i)*sim.Time(sim.Millisecond), 1)
	}
}
