package pperf

// Smoke tests: every example program builds and runs to completion with a
// sane exit. Skipped in -short mode (each run takes a few seconds).

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; skipped with -short")
	}
	cases := []struct {
		dir  string
		want string // a line the output must contain
	}{
		{"./examples/quickstart", "Performance Consultant's findings"},
		{"./examples/rma-tuning", "synchronization waiting"},
		{"./examples/spawn-monitor", "intercept inflation"},
		{"./examples/custom-metric", "big sends"},
		{"./examples/verify-findings", "all three methods agree"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("%s output missing %q:\n%s", tc.dir, tc.want, out)
			}
		})
	}
}
